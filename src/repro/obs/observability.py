"""The :class:`Observability` facade — what instrumented code holds.

One object bundles the three concerns of the obs layer:

* a tracer (:mod:`repro.obs.tracing`) producing nested spans,
* a :class:`~repro.obs.metrics.MetricsRegistry` of counters / gauges /
  histograms, and
* a slow-query log: per-query records (and, when tracing, full trace
  capture) gated by a latency threshold.

Instrumented code never branches on "is observability on?" — it calls
the facade unconditionally (``with obs.span(...)``,
``obs.record_cascade_query(...)``) and the *disabled* facade
(:data:`OBS_DISABLED`, the default everywhere) turns every call into
an immediate return.  That keeps hot paths free of dead branches and
makes the disabled cost a couple of attribute lookups per query.

Construction::

    obs = Observability()                          # in-memory only
    obs = Observability.to_files(
        trace_out="trace.jsonl",                   # span export
        metrics_out="metrics.json",                # snapshot on close()
        slow_query_ms=50,                          # gate trace capture
    )

The CLI flags ``--trace-out`` / ``--metrics-out`` / ``--slow-query-ms``
build exactly the second form.
"""

from __future__ import annotations

import threading
from collections import deque

from .clock import wall_s
from .metrics import MetricsRegistry
from .tracing import (
    NOOP_TRACER,
    InMemorySink,
    JsonlSpanExporter,
    Tracer,
    slow_trace_filter,
)

__all__ = ["Observability", "OBS_DISABLED"]

#: Histogram edges for per-query pruning ratios (fraction in [0, 1]).
_RATIO_EDGES = (0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1.0)

#: How many slow-query records the in-memory ring keeps.
_SLOW_LOG_CAPACITY = 1024


class Observability:
    """Tracer + metrics registry + slow-query log, as one handle.

    Parameters
    ----------
    tracer:
        A :class:`~repro.obs.tracing.Tracer` (or the no-op tracer).
        ``None`` builds a tracer over *trace_sink* when one is given,
        else the no-op tracer.
    trace_sink:
        Where finished traces go (a callable taking a span list).
    metrics:
        An existing registry to record into (``None`` creates one).
    slow_query_s:
        Latency threshold in seconds: queries at least this slow are
        appended to :attr:`slow_queries` (and reported to *on_slow*),
        and trace capture — when *gate_traces* — is restricted to them.
    on_slow:
        Optional callback invoked with each slow-query record dict.
    gate_traces:
        With a *slow_query_s* threshold, export only slow traces
        instead of every trace.
    workload_sink:
        Optional callable receiving one workload record per captured
        query (raw input series, parameters, exact results) — the
        food of :func:`repro.perf.replay.replay_workload`.  Engines
        only build the record when a sink is present
        (:attr:`wants_workload`).
    gate_workload:
        With a *slow_query_s* threshold, capture only slow queries'
        workload records instead of every query's.
    """

    enabled = True

    def __init__(
        self,
        *,
        tracer: Tracer | None = None,
        trace_sink=None,
        metrics: MetricsRegistry | None = None,
        slow_query_s: float | None = None,
        on_slow=None,
        gate_traces: bool = False,
        workload_sink=None,
        gate_workload: bool = False,
    ) -> None:
        if tracer is None:
            if trace_sink is not None:
                if gate_traces and slow_query_s is not None:
                    trace_sink = slow_trace_filter(slow_query_s, trace_sink)
                tracer = Tracer(sink=trace_sink)
            else:
                tracer = NOOP_TRACER
        self.tracer = tracer
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.slow_query_s = slow_query_s
        self.on_slow = on_slow
        self.slow_queries: deque = deque(maxlen=_SLOW_LOG_CAPACITY)
        self.workload_sink = workload_sink
        self._gate_workload = gate_workload
        self._workload_lock = threading.Lock()
        self._closers: list = []

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def to_files(
        cls,
        *,
        trace_out=None,
        metrics_out=None,
        workload_out=None,
        slow_query_ms: float | None = None,
        on_slow=None,
        trace_append: bool = False,
    ) -> "Observability":
        """File-backed observability, the CLI's configuration.

        *trace_out* receives every finished trace as JSONL spans (only
        slow ones when *slow_query_ms* is also given); *trace_append*
        extends an existing span log instead of truncating it.
        *metrics_out* receives one registry snapshot when
        :meth:`close` runs.  *workload_out* receives one replayable
        record per served query (only slow ones when *slow_query_ms*
        is also given) — see :mod:`repro.perf.replay`.
        """
        sink = None
        closers = []
        if trace_out is not None:
            exporter = JsonlSpanExporter(trace_out, append=trace_append)
            closers.append(exporter.close)
            sink = exporter
        workload_sink = None
        if workload_out is not None:
            from ..perf.replay import WorkloadRecorder

            workload_sink = WorkloadRecorder(workload_out)
            closers.append(workload_sink.close)
        obs = cls(
            trace_sink=sink,
            slow_query_s=None if slow_query_ms is None else slow_query_ms / 1e3,
            on_slow=on_slow,
            gate_traces=slow_query_ms is not None,
            workload_sink=workload_sink,
            gate_workload=slow_query_ms is not None,
        )
        obs._metrics_out = metrics_out
        obs._closers = closers
        return obs

    @classmethod
    def in_memory(cls, **kwargs) -> tuple["Observability", InMemorySink]:
        """Observability capturing traces in memory (tests, benchmarks)."""
        sink = InMemorySink()
        return cls(trace_sink=sink, **kwargs), sink

    def close(self) -> None:
        """Flush exporters; write the metrics snapshot if configured."""
        metrics_out = getattr(self, "_metrics_out", None)
        if metrics_out is not None:
            self.metrics.write_json(metrics_out)
        for closer in self._closers:
            closer()

    # ------------------------------------------------------------------
    # tracing
    # ------------------------------------------------------------------

    def span(self, name: str, **attrs):
        """Open a span on the facade's tracer (no-op when disabled)."""
        return self.tracer.span(name, **attrs)

    @property
    def wants_workload(self) -> bool:
        """True when a workload sink is attached (engines check this
        before paying for a replayable capture record)."""
        return self.workload_sink is not None

    # ------------------------------------------------------------------
    # recording hooks (called unconditionally by instrumented code)
    # ------------------------------------------------------------------

    def record_cascade_query(self, kind: str, stats,
                             kernel_stats=None, workload=None) -> None:
        """Fold one finished engine query into metrics + slow-query log.

        *stats* is the query's :class:`~repro.engine.CascadeStats`;
        *kernel_stats* the per-query
        :class:`~repro.dtw.kernels.KernelStats`, when the caller
        collected one.  *workload* — built by the engine only when
        :attr:`wants_workload` — carries the replayable capture
        (query id, raw input, parameters, exact results) and is
        forwarded to the workload sink, gated to slow queries when so
        configured.  Metric names recorded here are the contract
        documented in ``docs/ARCHITECTURE.md`` ("Observability").
        """
        m = self.metrics
        m.counter("engine.queries_total", kind=kind).inc()
        m.histogram("engine.query_seconds", kind=kind).observe(
            stats.total_time_s
        )
        m.counter("engine.candidates_total").inc(stats.corpus_size)
        m.counter("engine.candidates_refined_total").inc(
            stats.dtw_computations
        )
        m.counter("engine.dtw_abandoned_total").inc(stats.dtw_abandoned)
        m.counter("engine.exact_skipped_total").inc(stats.exact_skipped)
        m.counter("engine.results_total").inc(stats.results)
        if stats.corpus_size:
            m.histogram("engine.pruning_ratio", edges=_RATIO_EDGES).observe(
                stats.pruned_total / stats.corpus_size
            )
        for stage in stats.stages:
            m.counter("engine.stage.candidates_in_total",
                      stage=stage.name).inc(stage.candidates_in)
            m.counter("engine.stage.pruned_total",
                      stage=stage.name).inc(stage.pruned)
            m.counter("engine.stage.seconds_total",
                      stage=stage.name).inc(stage.wall_time_s)
        if kernel_stats is not None:
            self.record_kernel(kernel_stats)
        if self.workload_sink is not None and workload is not None:
            self._capture_workload(kind, stats, workload)
        self._check_slow(kind, stats)

    def _capture_workload(self, kind: str, stats, workload: dict) -> None:
        if (self._gate_workload and self.slow_query_s is not None
                and stats.total_time_s < self.slow_query_s):
            return
        record = {
            "schema": 1,
            "timestamp_s": wall_s(),
            "kind": kind,
            "duration_ms": stats.total_time_s * 1e3,
            "results": [
                [item, float(dist)] for item, dist in workload["results"]
            ],
            "query": [float(v) for v in workload["query"]],
            **{key: workload[key] for key in
               ("query_id", "params", "backend", "band")},
        }
        with self._workload_lock:
            self.workload_sink(record)

    def record_kernel(self, kernel_stats) -> None:
        """Fold one :class:`~repro.dtw.kernels.KernelStats` into metrics."""
        m = self.metrics
        m.counter("dtw.kernel_calls_total").inc(kernel_stats.calls)
        m.counter("dtw.cells_total").inc(kernel_stats.cells)
        m.counter("dtw.columns_compacted_total").inc(
            kernel_stats.compacted_columns
        )

    def record_index_query(self, kind: str, stats,
                           duration_s: float) -> None:
        """Fold one index-path query (:class:`QueryStats`) into metrics."""
        m = self.metrics
        m.counter("index.queries_total", kind=kind).inc()
        m.histogram("index.query_seconds", kind=kind).observe(duration_s)
        m.counter("index.candidates_total").inc(stats.candidates)
        m.counter("index.page_accesses_total").inc(stats.page_accesses)
        m.counter("index.dtw_computations_total").inc(stats.dtw_computations)
        m.counter("index.results_total").inc(stats.results)

    def record_serve_request(self, kind: str, status: str,
                             queue_wait_s: float, service_time_s: float,
                             *, from_cache: bool = False) -> None:
        """Fold one finished serving-layer request into metrics + spans.

        *kind* is ``"range"`` or ``"knn"``; *status* one of the
        :class:`~repro.serve.scheduler.ServeOutcome` statuses (``ok``,
        ``shed``, ``deadline_exceeded``, ``error``, ``shutdown``).
        Emits an *instant* root span ``serve:request`` whose attributes
        carry the real timings — deliberately not a span *around* the
        engine call, which would re-parent the engine's ``query`` root
        spans and break every trace consumer that counts roots.
        """
        m = self.metrics
        m.counter("serve.requests_total", kind=kind, status=status).inc()
        m.histogram("serve.queue_wait_seconds", kind=kind).observe(
            queue_wait_s
        )
        m.histogram("serve.request_seconds", kind=kind).observe(
            service_time_s
        )
        if from_cache:
            m.counter("serve.cache_hits_total", kind=kind).inc()
        if status == "deadline_exceeded":
            m.counter("serve.deadline_miss_total", kind=kind).inc()
        elif status == "shed":
            m.counter("serve.shed_total", kind=kind).inc()
        with self.span(
            "serve:request", kind=kind, status=status,
            queue_wait_s=queue_wait_s, service_time_s=service_time_s,
            from_cache=bool(from_cache),
        ):
            pass

    def record_serve_batch(self, kind: str, size: int, distinct: int,
                           max_batch: int, service_time_s: float,
                           queue_depth: int) -> None:
        """Fold one dispatched micro-batch into metrics + spans.

        *size* counts coalesced requests, *distinct* the deduplicated
        queries actually executed (``size - distinct`` answers came
        from request coalescing).  Occupancy — ``size / max_batch`` —
        lands in a ratio histogram so the analysis layer can report
        percentiles.  Emits an instant root span ``serve:batch`` (see
        :meth:`record_serve_request` for why not a wrapping span).
        """
        m = self.metrics
        m.counter("serve.batches_total", kind=kind).inc()
        m.counter("serve.batched_requests_total", kind=kind).inc(size)
        m.counter("serve.coalesced_total", kind=kind).inc(size - distinct)
        if max_batch > 0:
            m.histogram("serve.batch_occupancy", edges=_RATIO_EDGES).observe(
                min(1.0, size / max_batch)
            )
        m.histogram("serve.batch_seconds", kind=kind).observe(service_time_s)
        m.gauge("serve.queue_depth").set(queue_depth)
        with self.span(
            "serve:batch", kind=kind, size=int(size), distinct=int(distinct),
            max_batch=int(max_batch), service_time_s=service_time_s,
            queue_depth=int(queue_depth),
        ):
            pass

    def record_serve_cache(self, event: str) -> None:
        """Count one result-cache probe: ``hit`` / ``miss`` / ``stale``."""
        self.metrics.counter("serve.cache_probes_total", event=event).inc()

    def record_shard_fanout(self, kind: str, shards: int, wall_s: float,
                            per_shard_cpu_s) -> dict:
        """Fold one shard-router fan-out into metrics.

        *per_shard_cpu_s* is each worker's summed per-query time for
        the request, in shard order — it also feeds the per-shard
        ``shard.cpu_seconds_total{shard=i}`` counters, so skew is
        visible as a rate, not just an instantaneous gauge.  Two
        derived health numbers land in metrics and in the returned
        dict (the router sets them on its real ``shard:fanout`` span):
        **occupancy** — total worker time over ``shards × wall``, the
        fraction of the pool that was actually busy (low = fan-out
        overhead or skew dominates) — and **imbalance** — busiest
        worker over the mean, 1.0 when the partition splits work
        evenly.
        """
        m = self.metrics
        m.counter("shard.fanouts_total", kind=kind).inc()
        m.gauge("shard.count").set(shards)
        m.histogram("shard.fanout_seconds", kind=kind).observe(wall_s)
        busiest = max(per_shard_cpu_s, default=0.0)
        total = sum(per_shard_cpu_s)
        imbalance = busiest * shards / total if total > 0 else 1.0
        occupancy = None
        if wall_s > 0 and shards > 0:
            occupancy = min(1.0, total / (shards * wall_s))
            m.histogram("shard.occupancy", edges=_RATIO_EDGES).observe(
                occupancy
            )
        m.gauge("shard.imbalance").set(imbalance)
        for i, cpu_s in enumerate(per_shard_cpu_s):
            m.counter("shard.cpu_seconds_total", shard=str(i)).inc(cpu_s)
        attrs = {
            "wall_s": wall_s, "total_cpu_s": total,
            "busiest_cpu_s": busiest, "imbalance": imbalance,
        }
        if occupancy is not None:
            attrs["occupancy"] = occupancy
        return attrs

    def record_shard_lifecycle(self, event: str, shard: int) -> None:
        """Count one worker-process lifecycle event.

        *event* is ``spawn`` (initial start), ``crash`` (pipe hit EOF),
        ``respawn`` (replacement started), or ``shutdown`` (poison-pill
        drain) — the numbers that distinguish a healthy pool from one
        churning through workers.  The counter carries the shard id as
        a label, so one flapping worker stands out from fleet-wide
        churn.
        """
        self.metrics.counter("shard.lifecycle_total", event=event,
                             shard=str(int(shard))).inc()
        with self.span("shard:lifecycle", event=event, shard=int(shard)):
            pass

    def record_shard_health(self, health) -> None:
        """Publish one shard's :class:`~repro.shard.health.ShardHealth`
        row as per-shard ``shard.health.*`` gauges.

        Called by the router's health probe (and therefore by the
        background heartbeat) for every shard on every beat, so the
        gauges always carry the latest sample; ``None`` fields (no
        ping yet, no procfs) leave their gauge untouched rather than
        publishing a fake zero.
        """
        m = self.metrics
        sid = str(health.shard)
        m.gauge("shard.health.alive", shard=sid).set(
            1.0 if health.alive else 0.0
        )
        m.gauge("shard.health.epoch", shard=sid).set(health.epoch)
        m.gauge("shard.health.respawns", shard=sid).set(health.respawns)
        m.gauge("shard.health.requests", shard=sid).set(health.requests)
        m.gauge("shard.health.uptime_seconds", shard=sid).set(
            health.uptime_s
        )
        if health.ping_rtt_s is not None:
            m.gauge("shard.health.ping_rtt_seconds", shard=sid).set(
                health.ping_rtt_s
            )
        if health.last_reply_age_s is not None:
            m.gauge("shard.health.last_reply_age_seconds", shard=sid).set(
                health.last_reply_age_s
            )
        if health.rss_bytes is not None:
            m.gauge("shard.health.rss_bytes", shard=sid).set(
                health.rss_bytes
            )

    def record_quality_query(self, scenario: str, severity: float,
                             rank: int, db_size: int, *,
                             duration_s: float | None = None,
                             contour_rank: int | None = None) -> None:
        """Fold one ground-truth-labelled quality query into telemetry.

        *rank* is the 1-based competition rank of the intended melody
        (``db_size`` when retrieval missed entirely); *scenario* /
        *severity* name the degradation applied to the hum (see
        :mod:`repro.hum.degrade`).  *contour_rank*, when given, is the
        contour-string baseline's rank for the same degraded hum — the
        paper's comparison point, carried along so the scenario matrix
        can print it next to ours.

        Emits ``quality.*`` counters plus an *instant* root span
        ``quality:query`` whose attributes carry the event — the same
        shape as ``serve:request``, so trace files replay into the
        scenario matrix offline.
        """
        m = self.metrics
        sev = f"{float(severity):g}"
        m.counter("quality.queries_total",
                  scenario=scenario, severity=sev).inc()
        m.counter("quality.reciprocal_rank_total",
                  scenario=scenario, severity=sev).inc(
            1.0 / rank if rank >= 1 else 0.0)
        for k in (1, 5, 10):
            if 1 <= rank <= k:
                m.counter("quality.recall_hits_total",
                          scenario=scenario, severity=sev, k=str(k)).inc()
        if duration_s is not None:
            m.histogram("quality.query_seconds",
                        scenario=scenario).observe(duration_s)
        attrs = {
            "scenario": scenario, "severity": float(severity),
            "rank": int(rank), "db": int(db_size),
        }
        if duration_s is not None:
            attrs["duration_s"] = float(duration_s)
        if contour_rank is not None:
            attrs["contour_rank"] = int(contour_rank)
        with self.span("quality:query", **attrs):
            pass

    def record_shadow_check(self, agree: bool) -> None:
        """Fold one shadow-scoring comparison into metrics.

        Called by :class:`~repro.obs.quality.ShadowScorer` for every
        sampled served request re-checked against exact DTW.  Besides
        the check/disagree counters, publishes the running ratio as
        the ``quality.shadow.agreement`` gauge so a scrape sees live
        answer quality without reading counters itself.
        """
        m = self.metrics
        checked = m.counter("quality.shadow.checked_total")
        disagreed = m.counter("quality.shadow.disagreed_total")
        checked.inc()
        if not agree:
            disagreed.inc()
        total = checked.value
        if total > 0:
            m.gauge("quality.shadow.agreement").set(
                (total - disagreed.value) / total
            )

    def record_ingest_rebuild(self, *, rows_added: int, rows_total: int,
                              generation: int, pending: int,
                              duration_s: float) -> None:
        """Fold one completed ingest rebuild-and-swap into metrics.

        Called by :class:`~repro.ingest.IngestCoordinator` after the
        new store generation is live.  Publishes the generation and
        corpus size as gauges so a scrape sees the swap without
        reading counters, and the rebuild latency as a histogram.
        """
        m = self.metrics
        m.counter("ingest.rebuilds_total").inc()
        m.counter("ingest.rows_ingested_total").inc(rows_added)
        m.histogram("ingest.rebuild_seconds").observe(duration_s)
        m.gauge("ingest.generation").set(generation)
        m.gauge("ingest.rows").set(rows_total)
        m.gauge("ingest.pending").set(pending)

    def record_ingest_failure(self) -> None:
        """Count one dropped ingest batch (rebuild raised)."""
        self.metrics.counter("ingest.failures_total").inc()

    def _check_slow(self, kind: str, stats) -> None:
        if (self.slow_query_s is None
                or stats.total_time_s < self.slow_query_s):
            return
        record = {
            "timestamp_s": wall_s(),
            "kind": kind,
            "duration_ms": stats.total_time_s * 1e3,
            "corpus_size": stats.corpus_size,
            "refined": stats.dtw_computations,
            "results": stats.results,
            "pruned": stats.pruned_total,
        }
        self.slow_queries.append(record)
        if self.on_slow is not None:
            self.on_slow(record)


class _DisabledObservability(Observability):
    """Observability off: every hook is an immediate return.

    One shared instance (:data:`OBS_DISABLED`) is the default ``obs``
    of every engine, index, and system object.  ``span`` hands back
    the no-op tracer's shared null context manager; the record hooks
    are overridden to do nothing, so the hot path's cost is one
    method call per hook site.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(tracer=NOOP_TRACER)

    def record_cascade_query(self, kind, stats, kernel_stats=None,
                             workload=None) -> None:
        """Do nothing (observability is disabled)."""

    def record_kernel(self, kernel_stats) -> None:
        """Do nothing (observability is disabled)."""

    def record_index_query(self, kind, stats, duration_s) -> None:
        """Do nothing (observability is disabled)."""

    def record_serve_request(self, kind, status, queue_wait_s,
                             service_time_s, *, from_cache=False) -> None:
        """Do nothing (observability is disabled)."""

    def record_serve_batch(self, kind, size, distinct, max_batch,
                           service_time_s, queue_depth) -> None:
        """Do nothing (observability is disabled)."""

    def record_serve_cache(self, event) -> None:
        """Do nothing (observability is disabled)."""

    def record_shard_fanout(self, kind, shards, wall_s,
                            per_shard_cpu_s) -> dict:
        """Do nothing (observability is disabled)."""
        return {}

    def record_shard_lifecycle(self, event, shard) -> None:
        """Do nothing (observability is disabled)."""

    def record_shard_health(self, health) -> None:
        """Do nothing (observability is disabled)."""

    def record_quality_query(self, scenario, severity, rank, db_size, *,
                             duration_s=None, contour_rank=None) -> None:
        """Do nothing (observability is disabled)."""

    def record_ingest_rebuild(self, *, rows_added, rows_total, generation,
                              pending, duration_s) -> None:
        """Do nothing (observability is disabled)."""

    def record_ingest_failure(self) -> None:
        """Do nothing (observability is disabled)."""

    def record_shadow_check(self, agree) -> None:
        """Do nothing (observability is disabled)."""


#: The shared disabled facade — the default everywhere.
OBS_DISABLED = _DisabledObservability()
