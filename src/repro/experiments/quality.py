"""Retrieval-quality experiments: Tables 2 and 3.

Table 2 compares the time-series (DTW) approach against the contour
baseline on better-singer queries, both fed by the same audio →
pitch-tracking front end.  Table 3 sweeps the warping width with
poor-singer queries.  See EXPERIMENTS.md for paper-vs-measured.
"""

from __future__ import annotations

import numpy as np

from ..hum.pitch_tracking import track_pitch
from ..hum.segmentation import segment_notes
from ..hum.singer import SingerProfile, hum_melody
from ..hum.synthesis import synthesize_pitch_series
from ..music.contour import ContourIndex, contour_string
from ..music.corpus import generate_corpus, segment_corpus
from ..qbh.evaluation import RankTable
from ..qbh.system import QueryByHummingSystem
from .config import ExperimentScale

__all__ = ["build_quality_corpus", "run_table2", "run_table3", "TABLE3_DELTAS"]

TABLE3_DELTAS = (0.05, 0.1, 0.2)


def build_quality_corpus(scale: ExperimentScale, *, seed: int = 1):
    """The melody database of the quality experiments (paper: 1000)."""
    return segment_corpus(
        generate_corpus(scale.corpus_songs, seed=seed),
        per_song=scale.corpus_per_song,
        seed=seed,
    )


def run_table2(scale: ExperimentScale, *, seed: int = 42) -> tuple[RankTable, RankTable]:
    """Table 2: ranks under the time-series vs contour approaches.

    Returns ``(time_series_table, contour_table)``.
    """
    melodies = build_quality_corpus(scale)
    system = QueryByHummingSystem(melodies, delta=0.1, normal_length=128)
    contour_index = ContourIndex(melodies, levels=3)

    rng = np.random.default_rng(seed)
    profile = SingerProfile.better()
    ts_table = RankTable(name="Time series")
    ct_table = RankTable(name="Contour")
    targets = rng.choice(len(melodies), size=scale.table_queries, replace=False)
    for target in targets:
        sung = hum_melody(melodies[int(target)], profile, rng)
        # Microphone round trip shared by both approaches.
        wave = synthesize_pitch_series(sung, rng=rng)
        track = track_pitch(wave)
        ts_table.add(system.rank_of(track.pitch_series(), int(target)))
        # Contour pipeline: error-prone note segmentation on top.
        try:
            segmented = segment_notes(track.pitches)
            query_contour = contour_string(segmented)
            ct_rank = contour_index.rank_of(query_contour, int(target))
        except ValueError:
            ct_rank = len(melodies)  # transcription failed entirely
        ct_table.add(ct_rank)
    return ts_table, ct_table


def run_table3(scale: ExperimentScale, *, seed: int = 7) -> list[RankTable]:
    """Table 3: poor-singer ranks at each warping width."""
    melodies = build_quality_corpus(scale)
    systems = {
        delta: QueryByHummingSystem(melodies, delta=delta, normal_length=128)
        for delta in TABLE3_DELTAS
    }
    rng = np.random.default_rng(seed)
    profile = SingerProfile.poor()
    targets = rng.choice(len(melodies), size=scale.table_queries, replace=False)
    hums = [(int(t), hum_melody(melodies[int(t)], profile, rng)) for t in targets]
    tables = []
    for delta in TABLE3_DELTAS:
        table = RankTable(name=f"delta={delta}")
        for target, hum in hums:
            table.add(systems[delta].rank_of(hum, target))
        tables.append(table)
    return tables
