"""One-call reproduction report: every experiment, one markdown file.

``generate_report(scale)`` runs the full evaluation — Tables 2-3,
Figures 6-10, the scalability curve, and the ablations — and renders a
single self-describing markdown document with the same rows the paper
reports.  This is the artifact a reviewer asks for: one command, one
file, every number regenerated on their machine.
"""

from __future__ import annotations

from .ablations import (
    run_backend_ablation,
    run_knn_ablation,
    run_noise_sweep,
    run_second_filter_ablation,
    run_signsplit_ablation,
    run_split_ablation,
)
from .config import ExperimentScale
from .quality import run_table2, run_table3
from .reporting import format_series
from .scalability import run_fig8, run_fig9, run_fig10, run_size_scaling
from .tightness import run_fig6, run_fig7

__all__ = ["generate_report", "EXPERIMENT_SECTIONS"]

#: Section ids in report order (subset-able via `include`).
EXPERIMENT_SECTIONS = (
    "table2", "table3", "fig6", "fig7", "fig8", "fig9", "fig10",
    "scaling", "signsplit", "knn", "backends", "secondfilter", "splits",
    "noise",
)


def _rank_table_markdown(tables) -> str:
    from ..qbh.evaluation import RANK_BUCKETS

    header = "| Rank | " + " | ".join(t.name for t in tables) + " |"
    divider = "|" + "---|" * (len(tables) + 1)
    lines = [header, divider]
    for *_, label in RANK_BUCKETS:
        cells = " | ".join(str(t.counts[label]) for t in tables)
        lines.append(f"| {label} | {cells} |")
    mrr = " | ".join(f"{t.mean_reciprocal_rank():.3f}" for t in tables)
    lines.append(f"| MRR | {mrr} |")
    return "\n".join(lines)


def _block(rows: dict) -> str:
    return "```\n" + format_series("", rows).lstrip("\n") + "\n```"


def generate_report(
    scale: ExperimentScale, *, include: tuple[str, ...] | None = None
) -> str:
    """Run the evaluation suite and render a markdown report.

    Parameters
    ----------
    scale:
        Workload sizes (PAPER / REDUCED / SMOKE).
    include:
        Optional subset of :data:`EXPERIMENT_SECTIONS` to run.
    """
    selected = EXPERIMENT_SECTIONS if include is None else tuple(include)
    unknown = set(selected) - set(EXPERIMENT_SECTIONS)
    if unknown:
        raise ValueError(f"unknown sections: {sorted(unknown)}")
    small_db = min(scale.fig10_db, 5000)

    sections: list[str] = [
        "# Reproduction report",
        "",
        f"Workload scale: **{scale.name}** "
        f"(music DB {scale.fig9_db}, random-walk DB {scale.fig10_db}, "
        f"{scale.table_queries} hum queries per table).",
        "",
    ]

    def add(title: str, body: str) -> None:
        sections.extend([f"## {title}", "", body, ""])

    if "table2" in selected:
        ts, ct = run_table2(scale)
        add("Table 2 — time-series vs contour retrieval",
            _rank_table_markdown([ts, ct]))
    if "table3" in selected:
        add("Table 3 — poor singers vs warping width",
            _rank_table_markdown(run_table3(scale)))
    if "fig6" in selected:
        add("Figure 6 — lower-bound tightness across 24 datasets",
            _block(run_fig6(scale)))
    if "fig7" in selected:
        add("Figure 7 — tightness vs warping width (random walks)",
            _block(run_fig7(scale)))
    if "fig8" in selected:
        add("Figure 8 — candidates vs warping width (melody DB)",
            _block(run_fig8(scale)[0]))
    if "fig9" in selected:
        add("Figure 9 — large music database",
            _block(run_fig9(scale)[0]))
    if "fig10" in selected:
        add("Figure 10 — large random-walk database",
            _block(run_fig10(scale)[0]))
    if "scaling" in selected:
        add("Scalability — pages vs database size",
            _block(run_size_scaling(scale)))
    if "signsplit" in selected:
        add("Ablation — Lemma 3 sign split",
            _block(run_signsplit_ablation(max(200, scale.fig7_pairs))))
    if "knn" in selected:
        add("Ablation — multi-step k-NN",
            _block(run_knn_ablation(small_db, scale.fig8_queries)))
    if "backends" in selected:
        add("Ablation — index backends",
            _block(run_backend_ablation(small_db, scale.fig8_queries)[0]))
    if "secondfilter" in selected:
        add("Ablation — §5.2 second filter",
            _block(run_second_filter_ablation(small_db, scale.fig8_queries)))
    if "splits" in selected:
        add("Ablation — R* vs Guttman splits",
            _block(run_split_ablation(min(scale.fig10_db, 3000),
                                      scale.fig8_queries)))
    if "noise" in selected:
        add("Extension — retrieval vs singer error",
            _block(run_noise_sweep(scale)))
    return "\n".join(sections)
