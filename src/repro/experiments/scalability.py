"""Index-cost experiments: Figures 8-10 and the size-scaling curve.

All four sweeps measure the paper's implementation-free costs —
candidates retrieved and page accesses — through the warping index's
filter step, comparing the New_PAA and Keogh_PAA envelope transforms.
"""

from __future__ import annotations

import numpy as np

from ..core.envelope_transforms import (
    KeoghPAAEnvelopeTransform,
    NewPAAEnvelopeTransform,
)
from ..core.normal_form import NormalForm
from ..datasets.generators import random_walks
from ..hum.singer import SingerProfile, hum_melody
from ..index.gemini import WarpingIndex
from ..music.corpus import generate_corpus, segment_corpus
from .config import ExperimentScale

__all__ = [
    "build_music_database",
    "sweep_filter_costs",
    "run_fig8",
    "run_fig9",
    "run_fig10",
    "run_size_scaling",
    "INDEX_LENGTH",
    "INDEX_DIMS",
    "THRESHOLDS",
]

INDEX_LENGTH = 128
INDEX_DIMS = 8
THRESHOLDS = (0.2, 0.8)


def build_music_database(size: int, *, seed: int = 9):
    """A large melody database (one series per segmented phrase window)."""
    per_song = 20
    n_songs = (size + per_song - 1) // per_song
    melodies = segment_corpus(
        generate_corpus(n_songs, seed=seed), per_song=per_song, seed=seed
    )[:size]
    return [m.to_time_series(8) for m in melodies], melodies


def sweep_filter_costs(series, queries, sweep_deltas, *,
                       thresholds=THRESHOLDS) -> tuple[dict, dict]:
    """Candidates and page accesses per (delta, threshold) point.

    Returns ``(rows, results)``: printable columns and the raw per-
    point ``{"New": (cand, pages), "Keogh": (cand, pages)}`` map.
    """
    rows = {
        "width": [], "threshold": [],
        "cand_Keogh": [], "cand_New": [],
        "pages_Keogh": [], "pages_New": [],
    }
    results = {}
    for delta in sweep_deltas:
        indexes = {
            "New": WarpingIndex(
                series, delta=delta,
                env_transform=NewPAAEnvelopeTransform(INDEX_LENGTH, INDEX_DIMS),
                normal_form=NormalForm(length=INDEX_LENGTH),
            ),
            "Keogh": WarpingIndex(
                series, delta=delta,
                env_transform=KeoghPAAEnvelopeTransform(INDEX_LENGTH, INDEX_DIMS),
                normal_form=NormalForm(length=INDEX_LENGTH),
            ),
        }
        for eps in thresholds:
            radius = eps * np.sqrt(INDEX_LENGTH)
            point = {}
            for method, index in indexes.items():
                cand = pages = 0
                for query in queries:
                    _, stats = index.filter_query(query, radius)
                    cand += stats.candidates
                    pages += stats.page_accesses
                point[method] = (cand / len(queries), pages / len(queries))
            rows["width"].append(delta)
            rows["threshold"].append(eps)
            rows["cand_Keogh"].append(round(point["Keogh"][0], 1))
            rows["cand_New"].append(round(point["New"][0], 1))
            rows["pages_Keogh"].append(round(point["Keogh"][1], 1))
            rows["pages_New"].append(round(point["New"][1], 1))
            results[(delta, eps)] = point
    return rows, results


def _hum_queries(melodies, n_queries: int, *, seed: int):
    rng = np.random.default_rng(seed)
    profile = SingerProfile.better()
    targets = rng.choice(len(melodies), size=n_queries, replace=False)
    return [hum_melody(melodies[int(t)], profile, rng) for t in targets]


def run_fig8(scale: ExperimentScale, *, seed: int = 23) -> tuple[dict, dict]:
    """Figure 8: candidates on the quality corpus (paper's 1000 melodies)."""
    melodies = segment_corpus(
        generate_corpus(scale.corpus_songs, seed=1),
        per_song=scale.corpus_per_song, seed=1,
    )
    series = [m.to_time_series(8) for m in melodies]
    queries = _hum_queries(melodies, scale.fig8_queries, seed=seed)
    return sweep_filter_costs(series, queries, scale.sweep_deltas)


def run_fig9(scale: ExperimentScale, *, seed: int = 31) -> tuple[dict, dict]:
    """Figure 9: candidates and pages on the large music database."""
    series, melodies = build_music_database(scale.fig9_db)
    queries = _hum_queries(melodies, scale.fig8_queries, seed=seed)
    return sweep_filter_costs(series, queries, scale.sweep_deltas)


def run_fig10(scale: ExperimentScale, *, seed: int = 17) -> tuple[dict, dict]:
    """Figure 10: candidates and pages on the random-walk database."""
    series = list(random_walks(scale.fig10_db, INDEX_LENGTH, seed=seed))
    queries = random_walks(scale.fig8_queries, INDEX_LENGTH, seed=seed + 1)
    return sweep_filter_costs(series, queries, scale.sweep_deltas)


def run_size_scaling(
    scale: ExperimentScale, *, delta: float = 0.1,
    epsilon_factor: float = 0.4, seed: int = 91,
) -> dict:
    """Page accesses vs database size, warping index vs linear scan."""
    max_size = scale.fig10_db
    sizes = [max(1, max_size // 8), max(1, max_size // 4),
             max(1, max_size // 2), max_size]
    all_series = list(random_walks(max_size, INDEX_LENGTH, seed=seed))
    queries = random_walks(scale.fig8_queries, INDEX_LENGTH, seed=seed + 1)
    radius = epsilon_factor * np.sqrt(INDEX_LENGTH)
    rows = {"db_size": [], "pages_rstar": [], "pages_scan": [],
            "candidates": []}
    for size in sizes:
        subset = all_series[:size]
        rstar = WarpingIndex(subset, delta=delta,
                             normal_form=NormalForm(length=INDEX_LENGTH))
        scan = WarpingIndex(subset, delta=delta, index_kind="linear",
                            normal_form=NormalForm(length=INDEX_LENGTH))
        pages_r = pages_s = cand = 0
        for q in queries:
            _, stats_r = rstar.filter_query(q, radius)
            _, stats_s = scan.filter_query(q, radius)
            pages_r += stats_r.page_accesses
            pages_s += stats_s.page_accesses
            cand += stats_r.candidates
        n_queries = len(queries)
        rows["db_size"].append(size)
        rows["pages_rstar"].append(round(pages_r / n_queries, 1))
        rows["pages_scan"].append(round(pages_s / n_queries, 1))
        rows["candidates"].append(round(cand / n_queries, 1))
    return rows
