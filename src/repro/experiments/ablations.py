"""Ablation and extension experiments (beyond the paper's tables).

Each function isolates one design decision of the system and measures
what it buys; the corresponding ``benchmarks/bench_ablation_*.py``
files are thin wrappers.  See EXPERIMENTS.md for the recorded results.
"""

from __future__ import annotations

import numpy as np

from ..core.envelope import envelope_distance, k_envelope, warping_width_to_k
from ..core.envelope_transforms import (
    KeoghPAAEnvelopeTransform,
    NaiveEnvelopeTransform,
    NewPAAEnvelopeTransform,
    SignSplitEnvelopeTransform,
)
from ..core.normal_form import NormalForm
from ..core.transforms import DFTTransform
from ..datasets.generators import random_walks
from ..dtw.distance import ldtw_distance
from ..hum.singer import SingerProfile, hum_melody
from ..index.gemini import WarpingIndex
from ..index.rstartree import RStarTree
from ..music.corpus import generate_corpus, segment_corpus
from ..qbh.system import QueryByHummingSystem
from .config import ExperimentScale

__all__ = [
    "run_signsplit_ablation",
    "run_knn_ablation",
    "run_backend_ablation",
    "run_cascade_ablation",
    "run_second_filter_ablation",
    "run_split_ablation",
    "run_noise_sweep",
]

_LENGTH = 128
_DIMS = 8


def run_signsplit_ablation(n_trials: int, *, length: int = 128,
                           n_dims: int = 8, k: int = 6, seed: int = 3) -> dict:
    """Count container/lower-bound violations with and without Lemma 3."""
    rng = np.random.default_rng(seed)
    split = SignSplitEnvelopeTransform(DFTTransform(length, n_dims))
    naive = NaiveEnvelopeTransform(DFTTransform(length, n_dims))
    container = {"sign_split": 0, "naive": 0}
    lb_violations = {"sign_split": 0, "naive": 0}
    for _ in range(n_trials):
        y = np.cumsum(rng.normal(size=length))
        y -= y.mean()
        x = np.cumsum(rng.normal(size=length))
        x -= x.mean()
        env = k_envelope(y, k)
        z = env.lower + rng.random(length) * env.width()
        true_dtw = ldtw_distance(x, y, k)
        for name, env_t in (("sign_split", split), ("naive", naive)):
            reduced = env_t.reduce(env)
            if not reduced.contains(env_t.transform_series(z), atol=1e-9):
                container[name] += 1
            lb = envelope_distance(env_t.transform_series(x), reduced)
            if lb > true_dtw + 1e-9:
                lb_violations[name] += 1
    return {
        "method": ["sign_split", "naive"],
        "container_violations": [container["sign_split"], container["naive"]],
        "lower_bound_violations": [lb_violations["sign_split"],
                                   lb_violations["naive"]],
    }


def run_knn_ablation(db_size: int, n_queries: int, *,
                     k_neighbours: int = 10, seed: int = 21) -> dict:
    """Refinements per k-NN query: multi-step vs a full scan."""
    series = list(random_walks(db_size, _LENGTH, seed=seed))
    queries = random_walks(n_queries, _LENGTH, seed=seed + 1)
    rows = {"width": [], "refined_multistep": [], "refined_scan": [],
            "pages_multistep": []}
    for delta in (0.02, 0.1, 0.2):
        index = WarpingIndex(
            series, delta=delta, normal_form=NormalForm(length=_LENGTH),
            n_features=_DIMS,
        )
        refined = pages = 0
        for q in queries:
            _, stats = index.knn_query(q, k_neighbours)
            refined += stats.dtw_computations
            pages += stats.page_accesses
        rows["width"].append(delta)
        rows["refined_multistep"].append(round(refined / n_queries, 1))
        rows["refined_scan"].append(db_size)
        rows["pages_multistep"].append(round(pages / n_queries, 1))
    return rows


def run_backend_ablation(db_size: int, n_queries: int, *,
                         delta: float = 0.1, seed: int = 41) -> tuple[dict, dict]:
    """Page accesses per range query across all index backends.

    Returns ``(rows, answers)`` where *answers* maps backend to the
    per-query candidate lists (for the neutrality assertion).
    """
    series = list(random_walks(db_size, _LENGTH, seed=seed))
    queries = random_walks(n_queries, _LENGTH, seed=seed + 1)
    radius = 0.5 * np.sqrt(_LENGTH)
    kinds = ("rstar", "grid", "cluster", "linear")
    indexes = {
        kind: WarpingIndex(
            series, delta=delta, normal_form=NormalForm(length=_LENGTH),
            index_kind=kind,
        )
        for kind in kinds
    }
    pages = {kind: 0 for kind in kinds}
    answers = {kind: [] for kind in kinds}
    for q in queries:
        for kind, index in indexes.items():
            ids, stats = index.filter_query(q, radius)
            pages[kind] += stats.page_accesses
            answers[kind].append(sorted(ids))
    rows = {
        "backend": list(kinds),
        "pages_per_query": [round(pages[k] / n_queries, 1) for k in kinds],
    }
    return rows, answers


#: Stage configurations the cascade ablation compares.
CASCADE_CONFIGS = (
    ("none", ()),
    ("keogh_paa", ("keogh_paa",)),
    ("new_paa", ("new_paa",)),
    ("default", None),                 # first_last+keogh_paa+new_paa+lb_keogh
    ("default+lemire", "full"),
)


def run_cascade_ablation(db_size: int, n_queries: int, *,
                         delta: float = 0.1, k_neighbours: int = 10,
                         seed: int = 71) -> dict:
    """Which filter stages earn their keep, and in what order.

    Runs the same k-NN queries through :class:`~repro.engine.QueryEngine`
    under different stage configurations — no filter (the exact-scan
    baseline), each envelope bound alone, the default cascade, and the
    default plus Lemire's LB_Improved — and reports exact-DTW work and
    wall time per query.  Every configuration returns the identical
    exact answer; only the cost moves.
    """
    from ..engine import DEFAULT_STAGES, STAGE_ORDER, QueryEngine

    series = list(random_walks(db_size, _LENGTH, seed=seed))
    queries = random_walks(n_queries, _LENGTH, seed=seed + 1)
    rows = {"stages": [], "exact_dtw": [], "abandoned": [],
            "pruned_by_bounds": [], "ms_per_query": []}
    for label, stages in CASCADE_CONFIGS:
        if stages == "full":
            stages = STAGE_ORDER
        elif stages is None:
            stages = DEFAULT_STAGES
        engine = QueryEngine(
            series, delta=delta, stages=stages,
            normal_form=NormalForm(length=_LENGTH), n_features=_DIMS,
        )
        total = None
        for q in queries:
            _, stats = engine.knn(q, k_neighbours)
            total = stats if total is None else total + stats
        rows["stages"].append(label)
        rows["exact_dtw"].append(round(total.dtw_computations / n_queries, 1))
        rows["abandoned"].append(round(total.dtw_abandoned / n_queries, 1))
        rows["pruned_by_bounds"].append(
            round(total.pruned_total / n_queries, 1))
        rows["ms_per_query"].append(
            round(total.total_time_s * 1e3 / n_queries, 2))
    return rows


def run_second_filter_ablation(db_size: int, n_queries: int, *,
                               epsilon_factor: float = 0.5,
                               seed: int = 61) -> dict:
    """How many candidates the §5.2 full-dimension LB filter removes."""
    series = list(random_walks(db_size, _LENGTH, seed=seed))
    queries = random_walks(n_queries, _LENGTH, seed=seed + 1)
    radius = epsilon_factor * np.sqrt(_LENGTH)
    rows = {"width": [], "transform": [], "candidates": [],
            "pruned_by_LB": [], "exact_dtw": []}
    for delta in (0.05, 0.1, 0.2):
        for name, env_t in (
            ("New_PAA", NewPAAEnvelopeTransform(_LENGTH, _DIMS)),
            ("Keogh_PAA", KeoghPAAEnvelopeTransform(_LENGTH, _DIMS)),
        ):
            index = WarpingIndex(
                series, delta=delta, env_transform=env_t,
                normal_form=NormalForm(length=_LENGTH),
            )
            cand = pruned = exact = 0
            for q in queries:
                _, stats = index.range_query(q, radius, second_filter=True)
                cand += stats.candidates
                pruned += stats.extra.get("second_filter_pruned", 0)
                exact += stats.dtw_computations
            rows["width"].append(delta)
            rows["transform"].append(name)
            rows["candidates"].append(round(cand / n_queries, 1))
            rows["pruned_by_LB"].append(round(pruned / n_queries, 1))
            rows["exact_dtw"].append(round(exact / n_queries, 1))
    return rows


def run_split_ablation(db_size: int, n_queries: int, *,
                       delta: float = 0.1, seed: int = 51) -> dict:
    """R* split vs Guttman quadratic/linear, page accesses per query."""
    nf = NormalForm(length=_LENGTH)
    env_t = NewPAAEnvelopeTransform(_LENGTH, _DIMS)
    data = np.vstack([
        nf.apply(s) for s in random_walks(db_size, _LENGTH, seed=seed)
    ])
    features = env_t.transform.transform_batch(data)
    queries = random_walks(n_queries, _LENGTH, seed=seed + 1)
    k = warping_width_to_k(delta, _LENGTH)
    radius = 0.4 * np.sqrt(_LENGTH)
    rows = {"strategy": [], "pages_per_query": [], "height": []}
    for strategy in ("rstar", "quadratic", "linear"):
        tree = RStarTree(_DIMS, capacity=50, split_strategy=strategy)
        for i in range(features.shape[0]):
            tree.insert(features[i], i)
        tree.reset_stats()
        for q in queries:
            q_env = env_t.reduce(k_envelope(nf.apply(q), k))
            tree.range_search(q_env.lower, q_env.upper, radius)
        rows["strategy"].append(strategy)
        rows["pages_per_query"].append(round(tree.page_accesses / n_queries, 1))
        rows["height"].append(tree.height)
    return rows


#: Interpolation anchors: 0 = perfect, 1 = the paper's "poor singer".
NOISE_LEVELS = (0.0, 0.5, 1.0, 1.5, 2.0)


def _profile_at(level: float) -> SingerProfile:
    poor = SingerProfile.poor()
    return SingerProfile(
        transpose_range=poor.transpose_range,
        tempo_range=(
            1.0 - (1.0 - poor.tempo_range[0]) * min(level, 1.9) / 2,
            1.0 + (poor.tempo_range[1] - 1.0) * min(level, 1.9) / 2 + 1e-3,
        ),
        note_pitch_std=poor.note_pitch_std * level,
        drift_std=poor.drift_std * level,
        duration_jitter_std=poor.duration_jitter_std * level,
        frame_noise_std=poor.frame_noise_std * level,
        vibrato_depth=poor.vibrato_depth * min(level, 1.0),
        drop_note_prob=min(0.45, poor.drop_note_prob * level),
        voice_register=poor.voice_register,
    )


def run_noise_sweep(scale: ExperimentScale, *, seed: int = 77) -> dict:
    """Retrieval quality vs continuously scaled singer error."""
    melodies = segment_corpus(generate_corpus(scale.corpus_songs, seed=1),
                              per_song=scale.corpus_per_song, seed=1)
    system = QueryByHummingSystem(melodies, delta=0.1, normal_length=128)
    rng = np.random.default_rng(seed)
    targets = rng.choice(len(melodies), size=scale.table_queries,
                         replace=False)
    rows = {"error_level": [], "top1": [], "top10": [], "mean_rank": []}
    for level in NOISE_LEVELS:
        profile = _profile_at(level)
        ranks = []
        for target in targets:
            hum = hum_melody(melodies[int(target)], profile, rng)
            ranks.append(system.rank_of(hum, int(target)))
        ranks = np.array(ranks)
        rows["error_level"].append(level)
        rows["top1"].append(int(np.sum(ranks == 1)))
        rows["top10"].append(int(np.sum(ranks <= 10)))
        rows["mean_rank"].append(round(float(ranks.mean()), 1))
    return rows
