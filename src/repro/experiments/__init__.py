"""Programmatic access to every experiment of the paper's evaluation.

Each ``run_*`` function regenerates one table or figure at a chosen
:class:`~repro.experiments.config.ExperimentScale`; the benchmark
suite (``benchmarks/``) is a thin timing-and-assertion wrapper around
these, so results are equally reproducible from a notebook or script::

    from repro.experiments import REDUCED, run_fig6
    rows = run_fig6(REDUCED)
"""

from .ablations import (
    NOISE_LEVELS,
    run_backend_ablation,
    run_cascade_ablation,
    run_knn_ablation,
    run_noise_sweep,
    run_second_filter_ablation,
    run_signsplit_ablation,
    run_split_ablation,
)
from .config import PAPER, REDUCED, SMOKE, ExperimentScale, active_scale
from .quality import TABLE3_DELTAS, build_quality_corpus, run_table2, run_table3
from .report import EXPERIMENT_SECTIONS, generate_report
from .reporting import format_series
from .scalability import (
    INDEX_DIMS,
    INDEX_LENGTH,
    THRESHOLDS,
    build_music_database,
    run_fig8,
    run_fig9,
    run_fig10,
    run_size_scaling,
    sweep_filter_costs,
)
from .tightness import (
    FIG6_DIMS,
    FIG6_LENGTH,
    FIG7_WIDTHS,
    mean_pairwise_tightness,
    run_fig6,
    run_fig7,
)

__all__ = [
    "NOISE_LEVELS",
    "run_backend_ablation",
    "run_cascade_ablation",
    "run_knn_ablation",
    "run_noise_sweep",
    "run_second_filter_ablation",
    "run_signsplit_ablation",
    "run_split_ablation",
    "PAPER",
    "REDUCED",
    "SMOKE",
    "ExperimentScale",
    "active_scale",
    "TABLE3_DELTAS",
    "build_quality_corpus",
    "run_table2",
    "run_table3",
    "EXPERIMENT_SECTIONS",
    "generate_report",
    "format_series",
    "INDEX_DIMS",
    "INDEX_LENGTH",
    "THRESHOLDS",
    "build_music_database",
    "run_fig8",
    "run_fig9",
    "run_fig10",
    "run_size_scaling",
    "sweep_filter_costs",
    "FIG6_DIMS",
    "FIG6_LENGTH",
    "FIG7_WIDTHS",
    "mean_pairwise_tightness",
    "run_fig6",
    "run_fig7",
]
