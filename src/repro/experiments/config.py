"""Workload configuration for the paper's experiments.

Every experiment function in :mod:`repro.experiments` takes an
:class:`ExperimentScale`; three presets are provided:

* :data:`PAPER` — the sizes reported in the paper (35,000-melody music
  database, 50,000 random walks, 500 pairs per point, ...);
* :data:`REDUCED` — the default for the benchmark suite, sized to run
  in minutes;
* :data:`SMOKE` — seconds-scale, for tests.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = ["ExperimentScale", "PAPER", "REDUCED", "SMOKE", "active_scale"]


@dataclass(frozen=True)
class ExperimentScale:
    """Workload sizes for the experiment suite.

    Attributes mirror the knobs of the paper's evaluation section; see
    each experiment module for which attributes it reads.
    """

    name: str
    table_queries: int          # hum queries per singer group (paper: 20)
    corpus_songs: int           # songs in the quality corpus (paper: 50)
    corpus_per_song: int        # melodies per song (paper: 20)
    fig6_series: int            # series per dataset (paper: 50)
    fig7_pairs: int             # pairs per warping width (paper: 500)
    fig8_queries: int           # queries per (delta, threshold) point
    fig9_db: int                # music database size (paper: 35,000)
    fig10_db: int               # random-walk database size (paper: 50,000)
    sweep_deltas: tuple         # warping widths for Figures 8-10

    def __post_init__(self) -> None:
        for field_name in ("table_queries", "corpus_songs", "corpus_per_song",
                           "fig6_series", "fig7_pairs", "fig8_queries",
                           "fig9_db", "fig10_db"):
            if getattr(self, field_name) < 1:
                raise ValueError(f"{field_name} must be >= 1")
        if not self.sweep_deltas:
            raise ValueError("sweep_deltas must not be empty")


PAPER = ExperimentScale(
    name="paper",
    table_queries=20,
    corpus_songs=50,
    corpus_per_song=20,
    fig6_series=50,
    fig7_pairs=500,
    fig8_queries=20,
    fig9_db=35000,
    fig10_db=50000,
    sweep_deltas=(0.02, 0.04, 0.06, 0.08, 0.1, 0.12, 0.14, 0.16, 0.18, 0.2),
)

REDUCED = ExperimentScale(
    name="reduced",
    table_queries=20,
    corpus_songs=50,
    corpus_per_song=20,
    fig6_series=16,
    fig7_pairs=60,
    fig8_queries=8,
    fig9_db=4000,
    fig10_db=5000,
    sweep_deltas=(0.02, 0.06, 0.1, 0.14, 0.2),
)

SMOKE = ExperimentScale(
    name="smoke",
    table_queries=3,
    corpus_songs=5,
    corpus_per_song=6,
    fig6_series=4,
    fig7_pairs=5,
    fig8_queries=2,
    fig9_db=200,
    fig10_db=200,
    sweep_deltas=(0.05, 0.2),
)


def active_scale() -> ExperimentScale:
    """The scale selected by the ``REPRO_SCALE`` environment variable.

    ``full``/``paper`` → :data:`PAPER`; ``smoke`` → :data:`SMOKE`;
    anything else (including unset) → :data:`REDUCED`.
    """
    value = os.environ.get("REPRO_SCALE", "").lower()
    if value in ("full", "paper"):
        return PAPER
    if value == "smoke":
        return SMOKE
    return REDUCED
