"""Formatting for experiment results (aligned text tables)."""

from __future__ import annotations

__all__ = ["format_series"]


def format_series(title: str, columns: dict) -> str:
    """Aligned columnar rendering of an experiment's output rows.

    *columns* maps column name to an equal-length list of cell values;
    numbers are rendered with ``%g``.
    """
    if not columns:
        raise ValueError("need at least one column")
    keys = list(columns)
    lengths = {len(columns[k]) for k in keys}
    if len(lengths) != 1:
        raise ValueError(f"columns have unequal lengths: {sorted(lengths)}")

    def render(value) -> str:
        if isinstance(value, bool):
            return str(value)
        if isinstance(value, (int, float)):
            return f"{value:g}"
        return str(value)

    widths = [
        max(len(k), max((len(render(v)) for v in columns[k]), default=0))
        for k in keys
    ]
    lines = [f"=== {title} ==="] if title else []
    lines.append("  ".join(k.ljust(w) for k, w in zip(keys, widths)))
    (n_rows,) = lengths
    for row in range(n_rows):
        lines.append(
            "  ".join(
                render(columns[k][row]).ljust(w) for k, w in zip(keys, widths)
            )
        )
    return "\n".join(lines)
