"""Lower-bound-tightness experiments: Figures 6 and 7.

Both compute the paper's metric ``T = lower bound / true DTW`` —
Figure 6 across the 24 heterogeneous dataset families at one warping
width, Figure 7 across warping widths on random walks with the wider
transform line-up (LB, New_PAA, Keogh_PAA, SVD, DFT).
"""

from __future__ import annotations

import numpy as np

from ..core.envelope import k_envelope, warping_width_to_k
from ..core.envelope_transforms import (
    EnvelopeTransform,
    KeoghPAAEnvelopeTransform,
    NewPAAEnvelopeTransform,
    SignSplitEnvelopeTransform,
)
from ..core.lower_bounds import lb_envelope_transform, tightness
from ..core.transforms import DFTTransform, IdentityTransform, SVDTransform
from ..datasets.generators import dataset_names, make_dataset, random_walks
from ..dtw.distance import ldtw_distance
from .config import ExperimentScale

__all__ = ["mean_pairwise_tightness", "run_fig6", "run_fig7",
           "FIG6_LENGTH", "FIG6_DIMS", "FIG7_WIDTHS"]

FIG6_LENGTH = 256
FIG6_DIMS = 4
FIG6_DELTA = 0.1
FIG7_WIDTHS = (0.0, 0.02, 0.04, 0.06, 0.08, 0.1)
FIG7_METHODS = ("LB", "New_PAA", "Keogh_PAA", "SVD", "DFT")


def mean_pairwise_tightness(
    data: np.ndarray,
    env_transforms: dict[str, EnvelopeTransform],
    k: int,
) -> dict[str, float]:
    """Average tightness per method over all ordered pairs of rows."""
    count = data.shape[0]
    envelopes = [k_envelope(data[i], k) for i in range(count)]
    feature_envs = {
        name: [t.reduce(env) for env in envelopes]
        for name, t in env_transforms.items()
    }
    features = {
        name: [t.transform_series(data[i]) for i in range(count)]
        for name, t in env_transforms.items()
    }
    totals = {name: 0.0 for name in env_transforms}
    pairs = 0
    for i in range(count):
        for j in range(count):
            if i == j:
                continue
            true_dtw = ldtw_distance(data[i], data[j], k)
            if true_dtw == 0.0:
                continue
            pairs += 1
            for name in env_transforms:
                lb = lb_envelope_transform(
                    env_transforms[name],
                    None,
                    feature_envelope=feature_envs[name][j],
                    query_features=features[name][i],
                )
                totals[name] += tightness(lb, true_dtw)
    return {name: totals[name] / max(pairs, 1) for name in env_transforms}


def run_fig6(scale: ExperimentScale, *, seed: int = 0) -> dict:
    """Figure 6: mean T per dataset for LB / New_PAA / Keogh_PAA."""
    k = warping_width_to_k(FIG6_DELTA, FIG6_LENGTH)
    env_transforms = {
        "LB": SignSplitEnvelopeTransform(IdentityTransform(FIG6_LENGTH)),
        "New_PAA": NewPAAEnvelopeTransform(FIG6_LENGTH, FIG6_DIMS),
        "Keogh_PAA": KeoghPAAEnvelopeTransform(FIG6_LENGTH, FIG6_DIMS),
    }
    rows = {"dataset": [], "LB": [], "New_PAA": [], "Keogh_PAA": []}
    for number, name in enumerate(dataset_names(), start=1):
        data = make_dataset(name, scale.fig6_series, FIG6_LENGTH, seed=seed)
        data = data - data.mean(axis=1, keepdims=True)
        result = mean_pairwise_tightness(data, env_transforms, k)
        rows["dataset"].append(f"{number}.{name}")
        for method in ("LB", "New_PAA", "Keogh_PAA"):
            rows[method].append(round(result[method], 3))
    return rows


def run_fig7(scale: ExperimentScale, *, seed: int = 11) -> dict:
    """Figure 7: mean T vs warping width on random walks."""
    pairs = scale.fig7_pairs
    data = random_walks(2 * pairs + 200, FIG6_LENGTH, seed=seed)
    data = data - data.mean(axis=1, keepdims=True)
    train, pool = data[:200], data[200:]
    env_transforms = {
        "LB": SignSplitEnvelopeTransform(IdentityTransform(FIG6_LENGTH)),
        "New_PAA": NewPAAEnvelopeTransform(FIG6_LENGTH, FIG6_DIMS),
        "Keogh_PAA": KeoghPAAEnvelopeTransform(FIG6_LENGTH, FIG6_DIMS),
        "SVD": SignSplitEnvelopeTransform(
            SVDTransform.fit(train, FIG6_DIMS), name="SVD"
        ),
        "DFT": SignSplitEnvelopeTransform(
            DFTTransform(FIG6_LENGTH, FIG6_DIMS), name="DFT"
        ),
    }
    rows: dict = {"width": list(FIG7_WIDTHS)}
    rows.update({m: [] for m in FIG7_METHODS})
    for width in FIG7_WIDTHS:
        k = warping_width_to_k(width, FIG6_LENGTH)
        totals = {m: 0.0 for m in FIG7_METHODS}
        counted = 0
        for p in range(pairs):
            x, y = pool[2 * p], pool[2 * p + 1]
            true_dtw = ldtw_distance(x, y, k)
            if true_dtw == 0.0:
                continue
            counted += 1
            env = k_envelope(y, k)
            for m in FIG7_METHODS:
                lb = lb_envelope_transform(env_transforms[m], x, envelope=env)
                totals[m] += tightness(lb, true_dtw)
        for m in FIG7_METHODS:
            rows[m].append(round(totals[m] / max(counted, 1), 3))
    return rows
