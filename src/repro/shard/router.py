""":class:`ShardRouter` — fan out exact queries to worker processes.

The GIL caps a single Python process at roughly one core of kernel
time no matter how many threads serve it.  The router escapes that by
partitioning the corpus into N contiguous row blocks, giving each
block to a persistent **worker process** (see
:mod:`~repro.shard.worker`), and fanning every query out to all
shards at once.  Merging is exact by construction:

* **range**: each shard returns every block member within ε — the
  union over shards *is* the global answer (lower-bound filtering
  admits no false dismissals per shard, Zhu & Shasha 2003), so the
  merge is concatenate + stable sort by distance;
* **k-NN**: each shard returns its local top-k, a superset of that
  block's contribution to the global top-k (the Seidl–Kriegel
  multi-step invariant restricted to the block), so merging the
  per-shard heaps and keeping the k best is the exact global answer.

Per-shard :class:`~repro.engine.CascadeStats` re-merge through
``CascadeStats.from_dict`` + ``__add__`` — the same path the threaded
``*_many`` batching uses — so ``--stats`` and ``obs report`` stay
lossless; per-request kernel counters ship back as deltas and fold
into the parent's ``dtw.*`` metrics.

Traces cross the process boundary too: when the parent traces, each
request ships the fan-out span's ``(trace_id, span_id)`` to every
worker, which runs its engine under a real tracer (span ids prefixed
``w<shard>e<epoch>-``) and returns its finished spans in the reply.
The router re-anchors those spans onto its own ``perf_counter`` epoch
— offset = parent send time − worker receive time, one pipe hop of
skew, the deadline trick in reverse — and grafts them under the
fan-out span, so the export reads ``query → shard:fanout →
shard:query → stage:*/refine/kernel`` as one connected tree.  Spans of
an *abandoned* request (a stale reply dropped by the ``req_id``
filter) are dropped with the reply: an abandoned fan-out contributes
its parent-side spans only.

Health lives alongside: the router passively stamps per-shard request
counts and reply times as it serves, :meth:`ShardRouter.ping` actively
probes RTT/RSS/liveness (the :class:`~repro.shard.health.ShardHealthMonitor`
heartbeat calls it on an interval), and
:meth:`ShardRouter.health_snapshot` reads the rows lock-free.

Failure semantics: a worker crash (its pipe hits EOF) triggers an
automatic respawn from the shard's pickled
:class:`~repro.shard.spec.EngineSpec` and a single retry of the
in-flight request; a second crash on the same request raises a typed
:class:`ShardError`.  Every respawn (and every explicit rebuild via
:class:`IndexShardManager`) bumps :attr:`ShardRouter.epoch`, which the
serving layer folds into its cache version so no stale answer can
outlive the shards that computed it.  Shutdown is poison-pill + drain:
each worker receives ``None``, finishes its in-flight work, and exits.

When a fan-out fails early — one shard replies ``aborted`` or
``error`` — the request is abandoned parent-side, but the *other*
workers are not interrupted: a worker computes each request to
completion (its only early exit is the cooperative deadline it was
shipped), and its now-stale reply is dropped by the ``req_id`` filter
of the next gather loop.  Callers on a hot failure path should
therefore always set a deadline, which bounds the work every shard
spends on a request that no one is waiting for anymore.

Fan-outs are **serialized**: a router-level lock makes
``range_search``/``knn``/``*_many`` safe to call from concurrent
threads (the serving layer's dispatcher/executor threads do), at the
cost of running one fan-out at a time — the shard pool itself is the
parallelism, so concurrent fan-outs would only interleave pipe
traffic, not add throughput.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import shutil
import tempfile
import threading
from multiprocessing.connection import wait as _wait_ready

import numpy as np

from ..dtw.kernels import DEFAULT_BACKEND, KernelStats, get_kernel
from ..engine.cascade import DEFAULT_STAGES, CascadeStats
from ..engine.errors import QueryAborted
from ..obs import OBS_DISABLED
from ..obs.clock import monotonic_s
from .health import ShardHealth
from .spec import EngineSpec
from .worker import worker_main

__all__ = ["ShardRouter", "ShardError", "IndexShardManager",
           "resolve_mp_context"]

#: How long one gather poll blocks before re-checking aborts (seconds).
_POLL_S = 0.02


class ShardError(RuntimeError):
    """A shard request failed permanently (worker crashed twice, or the
    router is closed).  The serving layer maps this to a typed
    ``error`` outcome — never a silent partial answer."""


class RouterClosed(ShardError):
    """The router was drained and closed between being handed out and
    being used — the benign race of a generation swap closing the old
    fleet.  The serving layer retries exactly once against the
    manager's fresh router instead of surfacing an error."""


def resolve_mp_context(context=None):
    """A usable multiprocessing context.  Accepts a context object, a
    start-method name, or ``None`` for the default:

    * ``fork`` where available **and** the calling process is still
      single-threaded (cheapest — the corpus file is already written,
      nothing re-imports);
    * ``spawn`` otherwise.  Forking a multi-threaded Python process
      can deadlock the child on locks (threading, allocator, BLAS
      internals) held by other threads at fork time, and a live
      :class:`~repro.serve.QBHService` always has scheduler and
      executor threads running — so any spawn that happens with
      threads alive must not fork.

    An explicit *context* is honored as given; the thread check only
    shapes the default.
    """
    if context is None:
        methods = multiprocessing.get_all_start_methods()
        use_fork = "fork" in methods and threading.active_count() <= 1
        return multiprocessing.get_context("fork" if use_fork else "spawn")
    if isinstance(context, str):
        return multiprocessing.get_context(context)
    return context


class _Shard:
    """One worker process plus its parent-side pipe end and the health
    fields the router updates as a side effect of serving.

    The health fields are written one attribute at a time (atomic under
    the GIL) and read lock-free by :meth:`ShardRouter.health_snapshot`;
    ``last_sent_s`` doubles as the clock-re-anchoring reference for
    grafted worker spans (parent send time of the request whose reply
    is being consumed — fan-outs are serialized, so there is exactly
    one in flight per pipe)."""

    __slots__ = ("spec", "process", "conn", "epoch", "spawned_s",
                 "respawns", "requests", "last_sent_s", "last_reply_s",
                 "last_rtt_s", "rss_bytes")

    def __init__(self, spec, process, conn, epoch: int) -> None:
        self.spec = spec
        self.process = process
        self.conn = conn
        self.epoch = epoch
        self.spawned_s = monotonic_s()
        self.respawns = 0
        self.requests = 0
        self.last_sent_s: float | None = None
        self.last_reply_s: float | None = None
        self.last_rtt_s: float | None = None
        self.rss_bytes: int | None = None


class ShardRouter:
    """Exact range/k-NN search over a corpus partitioned across
    worker processes.

    Parameters
    ----------
    data:
        The full corpus as a 2-D float array (already normalised —
        rows are comparable as-is).
    shards:
        Worker-process count (clamped to the row count).
    band / stages / n_features / metric / batch_refine_threshold /
    dtw_backend / refine_chunk:
        Engine configuration, forwarded verbatim to every shard so a
        1-shard router and a plain :class:`~repro.engine.QueryEngine`
        are byte-identical (the cross-shard parity suite's premise).
    normal_form:
        Optional normalisation applied to each query *once*, router
        side, before fan-out (shard engines are built without one).
    ids:
        Identifiers, default ``range(len(data))``; partitioned with
        the rows.
    mp_context:
        Start method (``"fork"``/``"spawn"``), a context object, or
        ``None`` for the platform default.
    obs:
        Observability facade; fan-outs emit ``shard.*`` metrics and a
        ``shard:fanout`` span, worker lifecycle events are counted,
        and per-request kernel deltas fold into ``dtw.*``.
    epoch_start:
        First value of :attr:`epoch` (an :class:`IndexShardManager`
        threads it through rebuilds so the epoch never goes backward).

    The public query API mirrors :class:`~repro.engine.QueryEngine`
    (``range_search``/``knn``/``*_many`` with ``should_abort=``) plus a
    ``deadline_s=`` alternative that ships to the workers as remaining
    time — the serving layer uses it because a closure cannot cross a
    process boundary.  ``workers=`` on the ``*_many`` methods is
    accepted for interface compatibility (``repro perf replay`` passes
    it) and ignored: the shard pool *is* the parallelism.

    All query methods (and :meth:`close`) are thread-safe: fan-outs
    serialize on a router-level lock, so concurrent callers queue
    rather than interleave pipe traffic.
    """

    #: Duck-typing flag for the serving layer (deadline propagation).
    is_sharded = True

    def __init__(self, data, *, shards, band,
                 stages=DEFAULT_STAGES, n_features: int = 8,
                 normal_form=None, ids=None, metric: str = "euclidean",
                 batch_refine_threshold: int = 64,
                 dtw_backend: str | None = None,
                 refine_chunk: int | None = None,
                 mp_context=None, obs=None, epoch_start: int = 0) -> None:
        data = np.ascontiguousarray(data, dtype=np.float64)
        if data.ndim != 2 or data.shape[0] == 0:
            raise ValueError("data must be a non-empty 2-D array")
        shards = int(shards)
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        m, n = data.shape
        shards = min(shards, m)
        self.obs = OBS_DISABLED if obs is None else obs
        backend = DEFAULT_BACKEND if dtw_backend is None else dtw_backend
        get_kernel(backend)  # validate now, not in the workers
        self.dtw_backend = backend
        self.band = int(band)
        self.metric = metric
        self.stages = tuple(stages)
        self.normal_form = normal_form
        if ids is None:
            ids = list(range(m))
        else:
            ids = list(ids)
            if len(ids) != m:
                raise ValueError(f"{m} series but {len(ids)} ids")
        self.ids = ids
        self.n_shards = shards
        #: Bumped on every worker respawn; an :class:`IndexShardManager`
        #: also bumps it across rebuilds.  The serving cache folds it
        #: into its version, so shard turnover invalidates stale entries.
        self.epoch = int(epoch_start)
        self._rows = m
        self._series_length = n
        self._mp = resolve_mp_context(mp_context)
        self._mp_explicit = mp_context is not None
        self._req_ids = itertools.count()
        # Serializes fan-outs (and close()) so concurrent callers never
        # interleave sends or steal each other's replies off the pipes.
        self._lock = threading.Lock()
        self._closed = False
        self._tmpdir = tempfile.mkdtemp(prefix="repro-shard-")
        data_path = os.path.join(self._tmpdir, "corpus.f64")
        # The one-time feature shipment: the whole normalised corpus as
        # a flat file every worker maps read-only.  Native float64 —
        # the digests of a sharded and an unsharded run must be
        # byte-identical, which a float32 round-trip would break.
        data.tofile(data_path)
        bounds = np.linspace(0, m, shards + 1).astype(int)
        self._shards: list[_Shard] = []
        for i in range(shards):
            start, stop = int(bounds[i]), int(bounds[i + 1])
            spec = EngineSpec(
                data_path=data_path, dtype="float64", rows=m, cols=n,
                row_start=start, row_stop=stop, shard=i,
                band=self.band, stages=self.stages,
                n_features=n_features, ids=tuple(ids[start:stop]),
                metric=metric,
                batch_refine_threshold=batch_refine_threshold,
                dtw_backend=backend, refine_chunk=refine_chunk,
            )
            self._shards.append(self._spawn(spec, event="spawn"))

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_engine(cls, engine, *, shards, mp_context=None, obs=None,
                    epoch_start: int = 0) -> "ShardRouter":
        """Shard an existing :class:`~repro.engine.QueryEngine`.

        The router carries the engine's normal form (queries enter raw,
        exactly as they would the engine), so it is a drop-in
        replacement wherever the engine is called — including the
        ``repro perf replay`` harness.
        """
        return cls(
            engine._data, shards=shards, band=engine.band,
            stages=engine.stages,
            n_features=engine._features.shape[1],
            normal_form=engine.normal_form, ids=list(engine.ids),
            metric=engine.metric,
            batch_refine_threshold=engine.batch_refine_threshold,
            dtw_backend=engine.dtw_backend,
            refine_chunk=engine.refine_chunk,
            mp_context=mp_context,
            obs=engine.obs if obs is None and engine.obs.enabled else obs,
            epoch_start=epoch_start,
        )

    @classmethod
    def from_index(cls, index, *, shards, mp_context=None, obs=None,
                   epoch_start: int = 0) -> "ShardRouter":
        """Shard a :class:`~repro.index.gemini.WarpingIndex`'s corpus.

        Mirrors :meth:`WarpingIndex.engine`: queries are expected
        **pre-normalised** (the caller applies
        ``index.normal_form.apply``), which is how the serving layer
        and the CLI feed it.
        """
        return cls(
            index._data, shards=shards, band=index.band,
            n_features=index.feature_dim, ids=list(index.ids),
            metric=index.metric, dtw_backend=index.dtw_backend,
            mp_context=mp_context,
            obs=index.obs if obs is None and index.obs.enabled else obs,
            epoch_start=epoch_start,
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def _spawn_context(self):
        """The context to start the next worker with.

        A defaulted ``fork`` context is only safe while this process is
        single-threaded; respawns and manager rebuilds run on a live
        service's dispatcher/executor threads, where forking can
        deadlock the child on locks another thread held at fork time.
        So the start method is re-decided per spawn: an explicit
        *mp_context* is honored as given, a defaulted one falls back to
        ``spawn`` whenever other threads are alive.  The worker only
        needs its picklable :class:`EngineSpec`, so either method works.
        """
        if (not self._mp_explicit
                and self._mp.get_start_method() == "fork"
                and threading.active_count() > 1):
            return multiprocessing.get_context("spawn")
        return self._mp

    def _spawn(self, spec: EngineSpec, *, event: str) -> _Shard:
        ctx = self._spawn_context()
        parent_end, child_end = ctx.Pipe()
        # The worker is told the fleet epoch it was born into: it goes
        # into the span-id prefix and the health probe reply, which is
        # how a respawned worker's telemetry stays distinguishable from
        # its dead predecessor's.
        process = ctx.Process(
            target=worker_main, args=(spec, child_end, self.epoch),
            daemon=True, name=f"repro-shard-{spec.shard}",
        )
        process.start()
        child_end.close()  # parent keeps one end only, so EOF means death
        self.obs.record_shard_lifecycle(event, spec.shard)
        return _Shard(spec, process, parent_end, self.epoch)

    def close(self) -> None:
        """Poison-pill every worker, drain, and remove the corpus file."""
        with self._lock:
            self._shutdown(drain=True)

    def _shutdown(self, *, drain: bool) -> None:
        """Tear the fleet down.  ``drain=True`` (explicit close) waits
        for each worker to finish in-flight work; ``drain=False`` (the
        ``__del__`` path) terminates without joining so garbage
        collection of a leaked router can never block the interpreter
        behind a hung worker."""
        if self._closed:
            return
        self._closed = True
        for shard in self._shards:
            try:
                shard.conn.send(None)
            except (OSError, BrokenPipeError):
                pass
        for shard in self._shards:
            if drain:
                shard.process.join(timeout=5.0)
            if shard.process.is_alive():
                shard.process.terminate()
                if drain:  # pragma: no cover - hung worker
                    shard.process.join(timeout=5.0)
            shard.conn.close()
            self.obs.record_shard_lifecycle("shutdown", shard.spec.shard)
        shutil.rmtree(self._tmpdir, ignore_errors=True)

    def __enter__(self) -> "ShardRouter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - gc-order dependent
        # No lock and no joins here: __del__ can run at an arbitrary
        # point (even mid-fan-out on another thread after a leak), so
        # it must neither block on a hung worker nor deadlock on the
        # router lock — terminate, close pipes, remove the tmpdir.
        try:
            self._shutdown(drain=False)
        except BaseException:
            pass

    def __len__(self) -> int:
        return self._rows

    @property
    def series_length(self) -> int:
        return self._series_length

    # ------------------------------------------------------------------
    # queries (QueryEngine-compatible surface)
    # ------------------------------------------------------------------

    def range_search(self, query, epsilon: float, *, should_abort=None,
                     deadline_s: float | None = None):
        """All series within *epsilon*, merged across shards.

        Same contract as :meth:`QueryEngine.range_search`;
        *deadline_s* (absolute, :data:`~repro.obs.clock.monotonic_s`
        time) additionally ships to every worker as remaining time.
        """
        if epsilon < 0:
            raise ValueError(f"epsilon must be >= 0, got {epsilon}")
        results, stats = self._fanout(
            "range", [self._normalise_query(query)], float(epsilon),
            should_abort, deadline_s,
        )
        return results[0], stats

    def knn(self, query, k: int, *, should_abort=None,
            deadline_s: float | None = None):
        """The global *k* nearest, merged from per-shard top-k heaps."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        results, stats = self._fanout(
            "knn", [self._normalise_query(query)], int(k),
            should_abort, deadline_s,
        )
        return results[0], stats

    def range_search_many(self, queries, epsilon: float, *,
                          workers: int | None = None, should_abort=None,
                          deadline_s: float | None = None):
        """A batch of range queries, one fan-out for the whole batch."""
        del workers  # interface compatibility; shards are the pool
        if epsilon < 0:
            raise ValueError(f"epsilon must be >= 0, got {epsilon}")
        queries = [self._normalise_query(q) for q in queries]
        if not queries:
            raise ValueError("queries must not be empty")
        return self._fanout("range", queries, float(epsilon),
                            should_abort, deadline_s)

    def knn_many(self, queries, k: int, *, workers: int | None = None,
                 should_abort=None, deadline_s: float | None = None):
        """A batch of k-NN queries, one fan-out for the whole batch."""
        del workers  # interface compatibility; shards are the pool
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        queries = [self._normalise_query(q) for q in queries]
        if not queries:
            raise ValueError("queries must not be empty")
        return self._fanout("knn", queries, int(k), should_abort, deadline_s)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _normalise_query(self, query) -> np.ndarray:
        if self.normal_form is not None:
            return self.normal_form.apply(query)
        q = np.asarray(query, dtype=np.float64)
        if q.shape != (self._series_length,):
            raise ValueError(
                f"query must have length {self._series_length} "
                "(router built without a normal form)"
            )
        return q

    def _fanout(self, kind: str, queries, param, should_abort,
                deadline_s):
        """Send one request to every shard, gather, merge exactly.

        Holds the router lock for the whole send/gather/merge: the
        pipes carry one conversation at a time, so a concurrent caller
        could otherwise consume this request's replies (dropping them
        via the ``req_id`` filter) and leave this thread blocked in the
        gather loop forever.  The serving layer may call this from
        several dispatcher/executor threads at once; they queue here
        and the shard pool stays the only real parallelism.
        """
        with self._lock:
            return self._fanout_locked(kind, queries, param,
                                       should_abort, deadline_s)

    def _fanout_locked(self, kind, queries, param, should_abort,
                       deadline_s):
        if self._closed:
            raise RouterClosed("router is closed")
        started = monotonic_s()
        req_id = next(self._req_ids)
        collect = self.obs.enabled
        tracing = collect and self.obs.tracer.enabled
        remaining = None
        if deadline_s is not None:
            remaining = deadline_s - started
            if remaining <= 0:
                raise QueryAborted(phase="shard:fanout")
        # The sharded trace mirrors the single-engine taxonomy: one
        # ``query`` root per fan-out (a batch is one fan-out) with a
        # real ``shard:fanout`` child spanning send-to-gather, under
        # which every worker's shipped spans are grafted — so the
        # merged JSONL reads ``query → shard:fanout → shard:query →
        # stage:*/refine/kernel`` as one connected tree.
        with self.obs.span(
            "query", kind=kind, sharded=True, shards=self.n_shards,
            batch=len(queries), backend=self.dtw_backend, band=self.band,
        ) as qspan:
            with self.obs.span("shard:fanout", kind=kind,
                               shards=self.n_shards) as fspan:
                trace_ctx = None
                if tracing:
                    trace_ctx = (fspan.trace_id, fspan.span_id)
                per_shard = self._dispatch(
                    kind, queries, param, req_id, collect, trace_ctx,
                    remaining, should_abort, deadline_s,
                )
            all_results = self._merge_results(
                kind, param, [r[2] for r in per_shard], len(queries)
            )
            stats = self._merge_stats([r[3] for r in per_shard],
                                      monotonic_s() - started)
            if collect:
                derived = self._record_fanout(kind, per_shard, stats)
                # The handle outlives ``__exit__``; attributes stay
                # writable until the root closes and the trace ships
                # (same late-set trick the engine's stage spans use).
                fspan.set(**derived)
                qspan.set(
                    corpus_size=stats.corpus_size,
                    dtw_computations=stats.dtw_computations,
                    dtw_abandoned=stats.dtw_abandoned,
                    exact_skipped=stats.exact_skipped,
                    results=stats.results,
                    exact_time_s=stats.exact_time_s,
                    total_time_s=stats.total_time_s,
                    cpu_time_s=stats.cpu_time_s,
                )
        return all_results, stats

    def _dispatch(self, kind, queries, param, req_id, collect, trace_ctx,
                  remaining, should_abort, deadline_s) -> list:
        """Send one request to every shard and gather the replies.

        Returns the per-shard ``ok`` replies in shard order.  Worker
        span payloads (``ok`` *and* ``aborted`` replies) are grafted
        into the open trace as they arrive, re-anchored from the
        worker's ``perf_counter`` epoch onto ours: the worker reports
        the time it *received* the request on its own clock, we know
        when we *sent* it on ours, and the difference is the clock
        offset to within one pipe hop — the same trick the deadline's
        remaining-seconds encoding uses.
        """

        def message():
            # Rebuilt per send so a retry after a crash ships the
            # deadline still remaining, not the stale original.
            left = remaining
            if deadline_s is not None:
                left = max(0.0, deadline_s - monotonic_s())
            return ("req", req_id, kind, queries, param, left, collect,
                    trace_ctx)

        retried: set[int] = set()
        for i in range(self.n_shards):
            self._send(i, message, retried)
        replies: dict[int, tuple] = {}
        while len(replies) < self.n_shards:
            if should_abort is not None and should_abort():
                raise QueryAborted(phase="shard:fanout")
            if deadline_s is not None and monotonic_s() > deadline_s:
                raise QueryAborted(phase="shard:fanout")
            pending = {s.conn: s for s in self._shards
                       if s.spec.shard not in replies}
            for conn in _wait_ready(list(pending), timeout=_POLL_S):
                shard = pending[conn]
                i = shard.spec.shard
                try:
                    reply = conn.recv()
                except (EOFError, OSError):
                    self._respawn(i)
                    self._retry(i, message, retried)
                    continue
                if reply[0] == "pong" or reply[1] != req_id:
                    continue  # stale chatter from an abandoned request
                shard.last_reply_s = monotonic_s()
                if reply[0] == "aborted":
                    shard.requests += 1
                    # Graft before raising: the aborted worker's spans
                    # are all closed (its context managers unwound) and
                    # belong in the trace of the query that died here.
                    self._graft(shard, reply, 3)
                    raise QueryAborted(phase=reply[2])
                if reply[0] == "error":
                    shard.requests += 1
                    raise ShardError(
                        f"shard {i} failed: {reply[2]}: {reply[3]}"
                    )
                shard.requests += 1
                self._graft(shard, reply, 5)
                replies[i] = reply
        return [replies[i] for i in range(self.n_shards)]

    def _graft(self, shard: _Shard, reply: tuple, at: int) -> None:
        """Adopt a reply's span payload (at tuple index *at*, with the
        worker's receive timestamp right after it) into the open trace."""
        if len(reply) <= at + 1 or not reply[at]:
            return
        sent_s = shard.last_sent_s
        if sent_s is None:  # pragma: no cover - sends always stamp
            return
        self.obs.tracer.adopt(reply[at],
                              clock_offset_s=sent_s - reply[at + 1])

    def _send(self, i: int, message, retried: set) -> None:
        """Send to shard *i*, respawning once if its pipe is dead."""
        shard = self._shards[i]
        try:
            shard.last_sent_s = monotonic_s()
            shard.conn.send(message())
        except (OSError, BrokenPipeError):
            self._respawn(i)
            self._retry(i, message, retried)

    def _retry(self, i: int, message, retried: set) -> None:
        """Resend after a crash — at most once per shard per request."""
        if i in retried:
            raise ShardError(
                f"shard {i} crashed twice while serving one request"
            )
        retried.add(i)
        shard = self._shards[i]
        try:
            shard.last_sent_s = monotonic_s()
            shard.conn.send(message())
        except (OSError, BrokenPipeError):  # pragma: no cover
            raise ShardError(
                f"shard {i} crashed twice while serving one request"
            ) from None

    def _respawn(self, i: int) -> None:
        """Replace a dead worker and bump the epoch."""
        shard = self._shards[i]
        shard.conn.close()
        shard.process.join(timeout=5.0)
        self.obs.record_shard_lifecycle("crash", i)
        # Bump *before* spawning so the replacement worker is born into
        # the new epoch — its span-id prefix and health rows must never
        # collide with the dead worker's.
        self.epoch += 1
        replacement = self._spawn(shard.spec, event="respawn")
        replacement.respawns = shard.respawns + 1
        self._shards[i] = replacement

    # ------------------------------------------------------------------
    # health
    # ------------------------------------------------------------------

    def ping(self, *, timeout_s: float = 1.0) -> list[ShardHealth]:
        """Probe every worker and return a fresh health snapshot.

        Sends the health-probe ping (``("ping", id, True)``) to each
        live pipe, measures the round-trip time, and folds the reply's
        RSS / served-count into the shard's health fields.  A worker
        that does not answer within *timeout_s* keeps its stale RTT and
        shows up ``alive=False`` if its process is gone — the probe
        never respawns (that stays a query-path decision, where the
        retry bookkeeping lives).

        Takes the router lock: pings share the pipes with fan-outs.
        Between fan-outs the pipes are quiet, so any reply that is not
        our pong is stale chatter from an abandoned request and is
        dropped exactly as the gather loop would drop it.
        """
        with self._lock:
            if not self._closed:
                self._ping_locked(timeout_s)
            snapshot = self._health_rows()
        for row in snapshot:
            self.obs.record_shard_health(row)
        return snapshot

    def _ping_locked(self, timeout_s: float) -> None:
        ping_id = f"health-{next(self._req_ids)}"
        sent: dict[int, float] = {}
        for shard in self._shards:
            try:
                sent[shard.spec.shard] = monotonic_s()
                shard.conn.send(("ping", ping_id, True))
            except (OSError, BrokenPipeError):
                sent.pop(shard.spec.shard, None)  # dead pipe: skip it
        deadline = monotonic_s() + timeout_s
        while sent and monotonic_s() < deadline:
            pending = {s.conn: s for s in self._shards
                       if s.spec.shard in sent}
            if not pending:  # pragma: no cover - defensive
                break
            for conn in _wait_ready(list(pending), timeout=_POLL_S):
                shard = pending[conn]
                try:
                    reply = conn.recv()
                except (EOFError, OSError):
                    sent.pop(shard.spec.shard, None)
                    continue
                if (reply[0] != "pong" or reply[1] != ping_id
                        or len(reply) < 3):
                    continue  # stale chatter from an abandoned request
                now = monotonic_s()
                shard.last_rtt_s = now - sent.pop(shard.spec.shard)
                shard.last_reply_s = now
                health = reply[2]
                shard.rss_bytes = health.get("rss_bytes")

    def _health_rows(self) -> list[ShardHealth]:
        now = monotonic_s()
        rows = []
        for shard in self._shards:
            last = shard.last_reply_s
            rows.append(ShardHealth(
                shard=shard.spec.shard,
                epoch=shard.epoch,
                pid=shard.process.pid,
                alive=shard.process.is_alive(),
                respawns=shard.respawns,
                requests=shard.requests,
                uptime_s=now - shard.spawned_s,
                last_reply_age_s=None if last is None else now - last,
                ping_rtt_s=shard.last_rtt_s,
                rss_bytes=shard.rss_bytes,
            ))
        return rows

    def health_snapshot(self) -> list[ShardHealth]:
        """The fleet's health rows from parent-side state alone.

        Lock-free by design: every field it reads is written atomically
        by the serving path (or a ping), and a health row is advisory —
        so a snapshot never queues behind a long fan-out.  Use
        :meth:`ping` to refresh RTT/RSS first.
        """
        return self._health_rows()

    @staticmethod
    def _merge_results(kind, param, per_shard_results, n_queries):
        """Merge per-shard answers into exact global answers.

        The sort is stable and shards are visited in corpus order, so
        equal-distance results tie-break by corpus position — the same
        order a single engine's stable final sort produces.
        """
        merged = []
        for qi in range(n_queries):
            rows: list = []
            for results in per_shard_results:
                rows.extend(results[qi])
            rows.sort(key=lambda pair: pair[1])
            if kind == "knn":
                rows = rows[:param]
            merged.append(rows)
        return merged

    def _merge_stats(self, stats_dicts, wall_s: float) -> CascadeStats:
        """Re-merge per-shard stats exactly as threaded batching does.

        Candidate/pruning counters are additive across a partition, so
        the merged record reads like the single-engine one; the wall
        clock is the fan-out's (per-shard times overlap), with the
        summed per-shard time surviving as ``cpu_time_s``.
        """
        merged = CascadeStats.from_dict(stats_dicts[0])
        for payload in stats_dicts[1:]:
            merged = merged + CascadeStats.from_dict(payload)
        merged.total_time_s = wall_s
        return merged

    def _record_fanout(self, kind, per_shard, stats) -> dict:
        kernel = KernelStats()
        kernel_seen = False
        for reply in per_shard:
            delta = reply[4]
            if delta is not None:
                kernel_seen = True
                kernel.calls += delta[0]
                kernel.cells += delta[1]
                kernel.compacted_columns += delta[2]
        if kernel_seen:
            self.obs.record_kernel(kernel)
        return self.obs.record_shard_fanout(
            kind, self.n_shards, stats.total_time_s,
            [reply[3]["cpu_time_s"] for reply in per_shard],
        )


class IndexShardManager:
    """Keeps a :class:`ShardRouter` in step with a mutable index.

    The serving layer calls :meth:`router` once per batch (its
    ``engine_fn``): when the index's mutation counter moved since the
    last build, the old router is drained and a fresh one is built
    over the new corpus, with the epoch carried forward past the old
    router's — so the composite cache version ``(mutations, epoch)``
    from :meth:`version` can never repeat across a rebuild *or* a
    respawn.

    All methods are thread-safe: a manager lock serializes rebuild
    decisions, so two dispatcher threads observing the same stale
    ``_built_at`` cannot both rebuild — one builds, the other reuses
    the fresh fleet — and a rebuild can never close a router out from
    under a concurrent :meth:`version` read or regress the epoch.
    (The router handed out is itself thread-safe; a rebuild only
    happens between batches, when the scheduler calls back in.)
    """

    def __init__(self, index, *, shards, mp_context=None,
                 obs=None) -> None:
        self._index = index
        self._shards = int(shards)
        self._mp_context = mp_context
        self._obs = obs
        # RLock: version() reads epoch under the same lock.
        self._lock = threading.RLock()
        self._router: ShardRouter | None = None
        self._built_at: int | None = None
        self._next_epoch = 0

    def router(self) -> ShardRouter:
        """The current router, rebuilt if the index mutated."""
        with self._lock:
            if (self._router is None
                    or self._built_at != self._index.mutations):
                if self._router is not None:
                    self._next_epoch = self._router.epoch + 1
                    self._router.close()
                self._router = ShardRouter.from_index(
                    self._index, shards=self._shards,
                    mp_context=self._mp_context, obs=self._obs,
                    epoch_start=self._next_epoch,
                )
                self._built_at = self._index.mutations
            return self._router

    @property
    def epoch(self) -> int:
        with self._lock:
            if self._router is not None:
                return self._router.epoch
            return self._next_epoch

    def version(self) -> tuple:
        """Composite cache version: ``(index mutations, router epoch)``."""
        with self._lock:
            return (self._index.mutations, self.epoch)

    def prewarm(self) -> ShardRouter:
        """Rebuild the fleet now if the index mutated (ingest path).

        The ingest coordinator calls this right after a generation
        swap so the respawn cost is paid on the rebuild thread, not by
        the first serving batch.  Safe to call concurrently with
        serving: :meth:`router`'s lock serializes the rebuild, and
        closing the old router blocks until its in-flight fan-out
        drains.  A dispatcher that already held the old router gets
        :class:`RouterClosed` and is retried once by the serve layer.
        Exactly one epoch bump per mutation — a no-op when the fleet
        is already current.
        """
        return self.router()

    def current_router(self) -> ShardRouter | None:
        """The live router **without** triggering a rebuild — what the
        health paths use, so a heartbeat can never spawn a fleet."""
        with self._lock:
            return self._router

    def ping(self, *, timeout_s: float = 1.0) -> list:
        """Probe the current fleet (empty when none is built yet)."""
        router = self.current_router()
        return [] if router is None else router.ping(timeout_s=timeout_s)

    def health_snapshot(self) -> list:
        """The current fleet's health rows (empty when none is built)."""
        router = self.current_router()
        return [] if router is None else router.health_snapshot()

    def close(self) -> None:
        with self._lock:
            if self._router is not None:
                self._router.close()
                self._router = None
