"""Per-shard health: snapshots, RSS probing, and the heartbeat thread.

The router already *has* most of the health signal — respawn counts,
request counts, reply timestamps — as side effects of serving; this
module gives it a shape.  :class:`ShardHealth` is one worker's
snapshot row; :func:`read_rss_bytes` reads a process's resident set
from ``/proc`` (``None`` where the platform has no procfs — health
stays useful, just without memory); :class:`ShardHealthMonitor` is the
background heartbeat that calls :meth:`ShardRouter.ping` on an
interval so RTT, RSS, and liveness stay fresh even when no queries
flow.

Snapshots (:meth:`ShardRouter.health_snapshot`) are lock-free racy
reads of router-side fields — safe because each field is written
atomically under the GIL and a health row is advisory, not a
linearizable view.  Pings, by contrast, take the router lock: they
share the pipes with fan-outs and must not interleave with one.

Everything here surfaces in three places: ``shard.health.*`` gauges
(labelled per shard), :meth:`QBHService.saturation`'s ``"shards"``
section, and the ``repro obs top`` terminal view.
"""

from __future__ import annotations

import os
import threading
from dataclasses import asdict, dataclass

__all__ = ["ShardHealth", "ShardHealthMonitor", "read_rss_bytes"]


@dataclass
class ShardHealth:
    """One worker process's health row at a point in time.

    ``ping_rtt_s``, ``rss_bytes``, and ``last_reply_age_s`` are
    ``None`` until the first ping / reply provides them; ``alive`` is
    the parent-side :meth:`Process.is_alive` view, which can lag a
    crash by one request (the router only *learns* of a death when a
    pipe hits EOF or a ping times out).
    """

    shard: int
    epoch: int
    pid: int | None
    alive: bool
    respawns: int
    requests: int
    uptime_s: float
    last_reply_age_s: float | None = None
    ping_rtt_s: float | None = None
    rss_bytes: int | None = None

    def to_dict(self) -> dict:
        """The row as one JSON-ready dict (saturation/CLI schema)."""
        return asdict(self)


def read_rss_bytes(pid: int | None = None) -> int | None:
    """Resident-set size of *pid* (default: this process) in bytes.

    Reads ``/proc/<pid>/statm`` — no dependencies beyond :mod:`os` —
    and returns ``None`` on platforms without procfs or when the
    process is gone, so callers never branch on platform.
    """
    target = "self" if pid is None else str(int(pid))
    try:
        with open(f"/proc/{target}/statm", "rb") as handle:
            fields = handle.read().split()
        pages = int(fields[1])
        return pages * os.sysconf("SC_PAGESIZE")
    except (OSError, ValueError, IndexError):
        return None


class ShardHealthMonitor:
    """Background heartbeat pinging a shard fleet on an interval.

    *source* is anything with a ``ping(timeout_s=...)`` method — a
    :class:`~repro.shard.ShardRouter` or an
    :class:`~repro.shard.IndexShardManager` (which forwards to its
    current router without triggering a rebuild).  Each beat refreshes
    the router's health fields and re-publishes the ``shard.health.*``
    gauges; the latest snapshot is kept on :attr:`latest` for pull
    consumers.

    A beat that fails (router closed, fleet mid-rebuild) is swallowed:
    the monitor is best-effort by design and must never take down the
    serving path it observes.
    """

    def __init__(self, source, *, interval_s: float = 1.0,
                 ping_timeout_s: float = 1.0) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        self._source = source
        self.interval_s = float(interval_s)
        self.ping_timeout_s = float(ping_timeout_s)
        self.latest: list[ShardHealth] = []
        self.beats = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> "ShardHealthMonitor":
        """Start the heartbeat thread (idempotent)."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._loop, name="repro-shard-health", daemon=True
            )
            self._thread.start()
        return self

    def beat_once(self) -> list[ShardHealth]:
        """One synchronous heartbeat (used by tests and ``start()``-less
        callers); failures surface as an empty snapshot."""
        try:
            snapshot = self._source.ping(timeout_s=self.ping_timeout_s)
        except Exception:
            return []
        self.latest = snapshot
        self.beats += 1
        return snapshot

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.beat_once()

    def close(self) -> None:
        """Stop the heartbeat and join the thread."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
