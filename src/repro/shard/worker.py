"""The shard worker process: one engine, one pipe, one loop.

``worker_main`` is the target of every :class:`~repro.shard.ShardRouter`
process.  It rebuilds its engine from a picklable
:class:`~repro.shard.spec.EngineSpec` (corpus block mapped read-only,
shipped once — never per query), then serves request messages until a
poison pill (``None``) or pipe closure ends the loop.

Protocol (tuples over a ``multiprocessing.Pipe``):

====================================================  ====================
parent → worker                                       worker → parent
====================================================  ====================
``("req", id, kind, queries, param, remaining,        ``("ok", id, per-query
collect[, trace_ctx])``                               results, stats dict,
                                                      kernel counters,
                                                      spans, recv_s)``
                                                      ``("aborted", id,
                                                      phase, spans,
                                                      recv_s)``
                                                      ``("error", id, type,
                                                      message)``
``("ping", id)``                                      ``("pong", id)``
``("ping", id, True)``                                ``("pong", id, health)``
``("crash", now)``                                    *(process exits)*
``None`` — poison pill                                *(clean exit)*
====================================================  ====================

Deadlines ship as *remaining seconds*, not absolute timestamps:
:data:`repro.obs.clock.monotonic_s` is ``time.perf_counter``, whose
epoch is per-process, so the worker re-anchors the deadline against
its own clock on receipt.  The skew this admits is one pipe hop —
microseconds — versus being unboundedly wrong with absolute values.

Tracing crosses the pipe the same way.  ``trace_ctx`` is the router's
``(trace_id, fanout span_id)``; when present, the worker runs the
engine under a real :class:`~repro.obs.tracing.Tracer` whose remote
parent is the fan-out span and whose span ids carry a
``w<shard>e<epoch>-`` prefix (globally unique, even across respawns).
The completed spans ship back in the ``ok``/``aborted`` reply as plain
dicts together with ``recv_s`` — the worker-clock time this request
was received — which the router subtracts from its own send time to
re-anchor every span onto the parent's ``perf_counter`` epoch.  Worker
root spans are renamed ``query`` → ``shard:query`` and every shipped
span is stamped ``shard`` / ``worker_epoch`` / ``remote`` so the
merged trace stays attributable per process.  An aborted query
unwinds its span context managers before replying, so a worker can
never ship (or leak) a half-open span.

``("ping", id, True)`` is the health probe: the reply carries the
worker's RSS (``/proc`` stat), served-request count, epoch, and pid.
The bare two-tuple ping stays byte-compatible with the PR 6 protocol.

``("crash", now)`` exists for the fault-injection tests: with
``now=True`` the worker dies immediately, otherwise it dies at the
*next* request — the mid-request crash the respawn-and-retry path
must survive.
"""

from __future__ import annotations

import os

from ..engine.errors import QueryAborted
from ..obs import OBS_DISABLED, Observability
from ..obs.clock import monotonic_s
from ..obs.tracing import Tracer
from .health import read_rss_bytes

__all__ = ["worker_main"]

#: The ``dtw.*`` counters a worker diffs around each request so the
#: router can fold per-request kernel work into the parent's metrics
#: (``rows`` is not metered by the obs layer, so three counters are a
#: lossless projection of :meth:`Observability.record_kernel`).
_KERNEL_COUNTERS = (
    "dtw.kernel_calls_total",
    "dtw.cells_total",
    "dtw.columns_compacted_total",
)


def _kernel_totals(obs: Observability) -> tuple:
    return tuple(obs.metrics.counter(name).value for name in _KERNEL_COUNTERS)


class _TraceBuffer:
    """Sink collecting finished worker spans until the reply drains them."""

    __slots__ = ("spans",)

    def __init__(self) -> None:
        self.spans: list = []

    def __call__(self, spans) -> None:
        self.spans.extend(spans)

    def drain(self) -> list:
        out, self.spans = self.spans, []
        return out


def _ship_spans(buffer: _TraceBuffer, shard: int, epoch: int,
                parent_span_id) -> list:
    """Drain the trace buffer into reply-ready span dicts.

    Root-level worker spans (children of the router's fan-out span)
    are renamed ``query`` → ``shard:query`` — the parent trace already
    has its own ``query`` root, and the rename is what the per-shard
    analysis keys on.  Every span is stamped with its origin so the
    merged trace stays attributable after the graft.
    """
    records = []
    for span in buffer.drain():
        record = span.to_dict()
        if record["name"] == "query" and record["parent_id"] == parent_span_id:
            record["name"] = "shard:query"
        record["attrs"].update(shard=shard, worker_epoch=epoch, remote=True)
        records.append(record)
    return records


def worker_main(spec, conn, epoch: int = 0) -> None:
    """Serve one shard until the poison pill (process entry point)."""
    try:
        engine = spec.build()
    except BaseException:
        # A spec that cannot build (file vanished, bad config) must not
        # hang the router: closing the pipe surfaces as a crash there.
        conn.close()
        raise
    obs = None
    traced_obs = None
    trace_buffer = None
    served = 0
    crash_next = False
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message is None:  # poison pill: drain-and-exit
            break
        command = message[0]
        if command == "ping":
            if len(message) > 2 and message[2]:
                health = {
                    "rss_bytes": read_rss_bytes(),
                    "requests": served,
                    "epoch": epoch,
                    "pid": os.getpid(),
                }
                conn.send(("pong", message[1], health))
            else:
                conn.send(("pong", message[1]))
            continue
        if command == "crash":
            if message[1]:
                os._exit(13)
            crash_next = True
            continue
        _, req_id, kind, queries, param, remaining, collect = message[:7]
        trace_ctx = message[7] if len(message) > 7 else None
        recv_s = monotonic_s()
        if crash_next:
            os._exit(13)
        if trace_ctx is not None:
            if traced_obs is None:
                # Full tracing facade: spans are buffered locally and
                # shipped back with each reply.  The id prefix keeps
                # span ids globally unique across processes *and*
                # respawns (a replacement worker gets a new epoch).
                trace_buffer = _TraceBuffer()
                traced_obs = Observability(tracer=Tracer(
                    sink=trace_buffer,
                    id_prefix=f"w{spec.shard}e{epoch}-",
                ))
            engine.obs = traced_obs
            traced_obs.tracer.set_remote_parent(trace_ctx[0], trace_ctx[1])
            before = _kernel_totals(traced_obs)
        elif collect:
            if obs is None:
                # Metrics-only facade: enables the engine's KernelStats
                # collection and the dtw.* counters the router re-merges;
                # the no-op tracer keeps spans free.
                obs = Observability()
            engine.obs = obs
            before = _kernel_totals(obs)
        else:
            engine.obs = OBS_DISABLED
        should_abort = None
        if remaining is not None:
            deadline = recv_s + remaining
            should_abort = lambda: monotonic_s() > deadline  # noqa: E731
        try:
            if kind == "range":
                results, stats = engine.range_search_many(
                    queries, param, workers=1, should_abort=should_abort
                )
            else:
                results, stats = engine.knn_many(
                    queries, param, workers=1, should_abort=should_abort
                )
        except QueryAborted as exc:
            spans = None
            if trace_ctx is not None:
                # The span context managers unwound with the exception,
                # so every buffered span is closed — ship them: aborted
                # work is exactly what a trace consumer wants to see.
                traced_obs.tracer.clear_remote_parent()
                spans = _ship_spans(trace_buffer, spec.shard, epoch,
                                    trace_ctx[1])
            served += 1
            conn.send(("aborted", req_id, exc.phase, spans, recv_s))
            continue
        except Exception as exc:
            if trace_ctx is not None:
                # Error replies stay 4-tuples (typed, minimal); drop the
                # partial spans so they cannot bleed into the next request.
                traced_obs.tracer.clear_remote_parent()
                trace_buffer.drain()
            served += 1
            conn.send(("error", req_id, type(exc).__name__, str(exc)))
            continue
        kernel = None
        spans = None
        if trace_ctx is not None:
            traced_obs.tracer.clear_remote_parent()
            spans = _ship_spans(trace_buffer, spec.shard, epoch,
                                trace_ctx[1])
            after = _kernel_totals(traced_obs)
            kernel = tuple(b - a for b, a in zip(after, before))
        elif collect:
            after = _kernel_totals(obs)
            kernel = tuple(b - a for b, a in zip(after, before))
        served += 1
        conn.send(("ok", req_id, results, stats.to_dict(), kernel,
                   spans, recv_s))
    conn.close()
