"""The shard worker process: one engine, one pipe, one loop.

``worker_main`` is the target of every :class:`~repro.shard.ShardRouter`
process.  It rebuilds its engine from a picklable
:class:`~repro.shard.spec.EngineSpec` (corpus block mapped read-only,
shipped once — never per query), then serves request messages until a
poison pill (``None``) or pipe closure ends the loop.

Protocol (tuples over a ``multiprocessing.Pipe``):

====================================================  ====================
parent → worker                                       worker → parent
====================================================  ====================
``("req", id, kind, queries, param, remaining,        ``("ok", id, per-query
collect)``                                            results, stats dict,
                                                      kernel counters)``
                                                      ``("aborted", id,
                                                      phase)``
                                                      ``("error", id, type,
                                                      message)``
``("ping", id)``                                      ``("pong", id)``
``("crash", now)``                                    *(process exits)*
``None`` — poison pill                                *(clean exit)*
====================================================  ====================

Deadlines ship as *remaining seconds*, not absolute timestamps:
:data:`repro.obs.clock.monotonic_s` is ``time.perf_counter``, whose
epoch is per-process, so the worker re-anchors the deadline against
its own clock on receipt.  The skew this admits is one pipe hop —
microseconds — versus being unboundedly wrong with absolute values.

``("crash", now)`` exists for the fault-injection tests: with
``now=True`` the worker dies immediately, otherwise it dies at the
*next* request — the mid-request crash the respawn-and-retry path
must survive.
"""

from __future__ import annotations

import os

from ..engine.errors import QueryAborted
from ..obs import OBS_DISABLED, Observability
from ..obs.clock import monotonic_s

__all__ = ["worker_main"]

#: The ``dtw.*`` counters a worker diffs around each request so the
#: router can fold per-request kernel work into the parent's metrics
#: (``rows`` is not metered by the obs layer, so three counters are a
#: lossless projection of :meth:`Observability.record_kernel`).
_KERNEL_COUNTERS = (
    "dtw.kernel_calls_total",
    "dtw.cells_total",
    "dtw.columns_compacted_total",
)


def _kernel_totals(obs: Observability) -> tuple:
    return tuple(obs.metrics.counter(name).value for name in _KERNEL_COUNTERS)


def worker_main(spec, conn) -> None:
    """Serve one shard until the poison pill (process entry point)."""
    try:
        engine = spec.build()
    except BaseException:
        # A spec that cannot build (file vanished, bad config) must not
        # hang the router: closing the pipe surfaces as a crash there.
        conn.close()
        raise
    obs = None
    crash_next = False
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message is None:  # poison pill: drain-and-exit
            break
        command = message[0]
        if command == "ping":
            conn.send(("pong", message[1]))
            continue
        if command == "crash":
            if message[1]:
                os._exit(13)
            crash_next = True
            continue
        _, req_id, kind, queries, param, remaining, collect = message
        if crash_next:
            os._exit(13)
        if collect:
            if obs is None:
                # Metrics-only facade: enables the engine's KernelStats
                # collection and the dtw.* counters the router re-merges;
                # the no-op tracer keeps spans free.
                obs = Observability()
            engine.obs = obs
            before = _kernel_totals(obs)
        else:
            engine.obs = OBS_DISABLED
        should_abort = None
        if remaining is not None:
            deadline = monotonic_s() + remaining
            should_abort = lambda: monotonic_s() > deadline  # noqa: E731
        try:
            if kind == "range":
                results, stats = engine.range_search_many(
                    queries, param, workers=1, should_abort=should_abort
                )
            else:
                results, stats = engine.knn_many(
                    queries, param, workers=1, should_abort=should_abort
                )
        except QueryAborted as exc:
            conn.send(("aborted", req_id, exc.phase))
            continue
        except Exception as exc:
            conn.send(("error", req_id, type(exc).__name__, str(exc)))
            continue
        kernel = None
        if collect:
            after = _kernel_totals(obs)
            kernel = tuple(b - a for b, a in zip(after, before))
        conn.send(("ok", req_id, results, stats.to_dict(), kernel))
    conn.close()
