"""Picklable engine-construction specs (the factory-args pattern).

A worker process cannot receive a live
:class:`~repro.engine.QueryEngine` — the object graph (corpus matrix,
precomputed PAA features, cached refiners, an observability facade
holding locks) is neither cheap nor safe to pickle, and under the
``spawn`` start method *everything* crossing the process boundary must
pickle.  :class:`EngineSpec` is the construction recipe instead: plain
strings, ints, and id tuples that describe how to *rebuild* one
shard's engine, with the corpus block arriving via a read-only
:func:`numpy.memmap` over a file the router wrote once at startup —
the features are shipped exactly once, never per query, and the OS
page cache shares the physical pages between every worker on the
host regardless of start method.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..engine.cascade import DEFAULT_STAGES, QueryEngine

__all__ = ["EngineSpec"]


@dataclass(frozen=True)
class EngineSpec:
    """Everything a worker needs to build its shard's query engine.

    The spec is deliberately *data only* so it pickles under any
    ``multiprocessing`` start method (the spawn-context regression
    test in ``tests/shard/`` holds this to account).  ``build()`` maps
    ``[row_start, row_stop)`` of the corpus file and constructs a
    :class:`~repro.engine.QueryEngine` over that block — without a
    normal form, because the router normalises queries exactly once
    before fanning them out (mirroring
    :meth:`repro.index.gemini.WarpingIndex.engine`).
    """

    data_path: str
    dtype: str
    rows: int
    cols: int
    row_start: int
    row_stop: int
    shard: int
    band: int
    stages: tuple = DEFAULT_STAGES
    n_features: int = 8
    ids: tuple = ()
    metric: str = "euclidean"
    dtw_backend: str | None = None
    batch_refine_threshold: int = 64
    refine_chunk: int | None = None

    def build(self) -> QueryEngine:
        """Construct this shard's engine over the mapped corpus block."""
        data = np.memmap(
            self.data_path, dtype=self.dtype, mode="r",
            shape=(self.rows, self.cols),
        )[self.row_start:self.row_stop]
        return QueryEngine(
            data,
            band=self.band,
            stages=self.stages,
            n_features=self.n_features,
            ids=list(self.ids),
            metric=self.metric,
            batch_refine_threshold=self.batch_refine_threshold,
            dtw_backend=self.dtw_backend,
            refine_chunk=self.refine_chunk,
            # One thread per worker: the shard pool itself is the
            # parallelism, and in-worker threads would only fight the
            # worker's own GIL.
            workers=1,
        )
