"""Sharded multi-process index tier: escape the GIL for multi-core serving.

The :mod:`repro.serve` layer batches and schedules, but every DTW
still runs in one Python process — threads cannot overlap kernel time
behind the GIL.  This package partitions the corpus into N row blocks,
gives each to a persistent worker **process**, and puts an exact
merging router in front:

* :mod:`~repro.shard.spec` — :class:`EngineSpec`, the picklable
  factory-args recipe a worker rebuilds its engine from (corpus block
  mapped read-only from a file written once at startup);
* :mod:`~repro.shard.worker` — the worker-process loop: request
  messages in, exact per-shard answers + re-mergeable stats out, with
  deadlines re-anchored against the worker's own clock;
* :mod:`~repro.shard.router` — :class:`ShardRouter` (fan-out, exact
  range/k-NN merge, crash respawn with retry-once, poison-pill drain)
  and :class:`IndexShardManager` (rebuild-on-mutation with a
  monotonic epoch the serving cache folds into its version).

Answers are byte-identical to a single engine over the same corpus —
the per-shard lower-bound cascade admits no false dismissals, and the
multi-step k-NN invariant makes per-shard top-k heaps merge to the
exact global top-k.  See ``docs/ARCHITECTURE.md`` ("Sharded index
tier").
"""

from .health import ShardHealth, ShardHealthMonitor, read_rss_bytes
from .router import (
    IndexShardManager,
    RouterClosed,
    ShardError,
    ShardRouter,
    resolve_mp_context,
)
from .spec import EngineSpec

__all__ = [
    "ShardRouter",
    "ShardError",
    "RouterClosed",
    "IndexShardManager",
    "EngineSpec",
    "resolve_mp_context",
    "ShardHealth",
    "ShardHealthMonitor",
    "read_rss_bytes",
]
