"""R*-tree: the multidimensional index behind the warping index.

A from-scratch implementation of Beckmann, Kriegel, Schneider & Seeger
(SIGMOD 1990), the index the paper uses (via LibGist) to store reduced
feature vectors.  Supported operations:

* dynamic ``insert`` with R* subtree choice, forced reinsertion, and
  the margin/overlap-driven split;
* ``bulk_load`` via Sort-Tile-Recursive packing (used to build the
  35k/50k-point indexes of Figures 9-10 quickly);
* rectangle-range search (:meth:`RStarTree.range_search`) — all points
  within Euclidean distance ``radius`` of a query *rectangle*, which is
  exactly the feature-space envelope query of Section 4.3;
* incremental nearest-neighbour ranking (:meth:`RStarTree.nearest`),
  the primitive under optimal multi-step k-NN.

Every node visited during a query counts as one **page access**, the
implementation-free IO measure reported in Figures 9 and 10.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Iterator

import numpy as np

__all__ = ["RStarTree"]


class _Node:
    """A tree node: a page holding points (leaf) or child nodes."""

    __slots__ = ("leaf", "entries", "lower", "upper")

    def __init__(self, leaf: bool, dim: int) -> None:
        self.leaf = leaf
        self.entries: list = []  # (point, item_id) tuples or _Node children
        self.lower = np.full(dim, math.inf)
        self.upper = np.full(dim, -math.inf)

    def recompute_mbr(self) -> None:
        dim = self.lower.size
        lower = np.full(dim, math.inf)
        upper = np.full(dim, -math.inf)
        if self.leaf:
            for point, _ in self.entries:
                np.minimum(lower, point, out=lower)
                np.maximum(upper, point, out=upper)
        else:
            for child in self.entries:
                np.minimum(lower, child.lower, out=lower)
                np.maximum(upper, child.upper, out=upper)
        self.lower = lower
        self.upper = upper

    def extend_mbr(self, lower: np.ndarray, upper: np.ndarray) -> None:
        np.minimum(self.lower, lower, out=self.lower)
        np.maximum(self.upper, upper, out=self.upper)


def _area(lower: np.ndarray, upper: np.ndarray) -> float:
    return float(np.prod(np.maximum(upper - lower, 0.0)))


def _margin(lower: np.ndarray, upper: np.ndarray) -> float:
    return float(np.sum(np.maximum(upper - lower, 0.0)))


def _enlargement(lower, upper, plower, pupper) -> float:
    new_lower = np.minimum(lower, plower)
    new_upper = np.maximum(upper, pupper)
    return _area(new_lower, new_upper) - _area(lower, upper)


def _overlap(a_lower, a_upper, b_lower, b_upper) -> float:
    inter_lower = np.maximum(a_lower, b_lower)
    inter_upper = np.minimum(a_upper, b_upper)
    return _area(inter_lower, inter_upper)


def _mindist_cost(lower, upper, q_lower, q_upper, manhattan: bool) -> float:
    """Min distance between two axis-aligned rectangles, as a *cost*.

    With ``q_lower == q_upper`` this is point-to-rectangle MINDIST; in
    general it is the gap between the boxes along each axis.  The cost
    is the squared Euclidean distance, or the plain L1 sum when
    *manhattan* — callers compare it against ``radius**2`` or
    ``radius`` respectively.
    """
    gap = np.maximum(q_lower - upper, 0.0) + np.maximum(lower - q_upper, 0.0)
    if manhattan:
        return float(np.sum(gap))
    return float(np.dot(gap, gap))


def _radius_cost(radius: float, manhattan: bool) -> float:
    return radius if manhattan else radius * radius


def _cost_to_distance(cost: float, manhattan: bool) -> float:
    return cost if manhattan else math.sqrt(cost)


def _check_metric(metric: str) -> bool:
    if metric not in ("euclidean", "manhattan"):
        raise ValueError(
            f"metric must be 'euclidean' or 'manhattan', got {metric!r}"
        )
    return metric == "manhattan"


class RStarTree:
    """An R*-tree over ``dim``-dimensional points.

    Parameters
    ----------
    dim:
        Dimensionality of the indexed feature vectors.
    capacity:
        Maximum entries per node — the "page size" of the index.
    min_fill:
        Minimum fill ratio after a split (R* recommends 0.4).
    reinsert_fraction:
        Fraction of entries force-reinserted on first overflow of a
        level (R* recommends 0.3; only used by the "rstar" strategy).
    split_strategy:
        ``"rstar"`` (Beckmann et al., default), or Guttman's classic
        ``"quadratic"`` / ``"linear"`` splits — kept for the ablation
        comparing node quality across split algorithms.

    Notes
    -----
    ``page_accesses`` accumulates across queries; call
    :meth:`reset_stats` between measurements.
    """

    _STRATEGIES = ("rstar", "quadratic", "linear")

    def __init__(
        self,
        dim: int,
        *,
        capacity: int = 50,
        min_fill: float = 0.4,
        reinsert_fraction: float = 0.3,
        split_strategy: str = "rstar",
    ) -> None:
        if dim < 1:
            raise ValueError(f"dimension must be >= 1, got {dim}")
        if capacity < 4:
            raise ValueError(f"node capacity must be >= 4, got {capacity}")
        if not 0.0 < min_fill <= 0.5:
            raise ValueError(f"min fill must be in (0, 0.5], got {min_fill}")
        if split_strategy not in self._STRATEGIES:
            raise ValueError(
                f"split strategy must be one of {self._STRATEGIES}, "
                f"got {split_strategy!r}"
            )
        self.dim = dim
        self.capacity = capacity
        self.min_entries = max(2, int(capacity * min_fill))
        self.reinsert_count = max(1, int(capacity * reinsert_fraction))
        self.split_strategy = split_strategy
        self._root = _Node(leaf=True, dim=dim)
        self._size = 0
        self.page_accesses = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        """Number of levels (1 for a tree that is a single leaf)."""
        levels = 1
        node = self._root
        while not node.leaf:
            node = node.entries[0]
            levels += 1
        return levels

    def reset_stats(self) -> None:
        """Zero the page-access counter (between measured queries)."""
        self.page_accesses = 0

    def insert(self, point, item_id) -> None:
        """Insert one point with an opaque identifier."""
        pt = np.asarray(point, dtype=np.float64)
        if pt.shape != (self.dim,):
            raise ValueError(f"expected a point of shape ({self.dim},), got {pt.shape}")
        self._insert_entry((pt.copy(), item_id), level=0, reinserting=set())
        self._size += 1

    @classmethod
    def bulk_load(
        cls,
        points,
        ids=None,
        *,
        capacity: int = 50,
        min_fill: float = 0.4,
    ) -> "RStarTree":
        """Build a packed tree with Sort-Tile-Recursive loading.

        Parameters
        ----------
        points:
            Array of shape ``(m, dim)``.
        ids:
            Optional identifiers, default ``range(m)``.
        """
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2:
            raise ValueError(f"points must be 2-D, got shape {pts.shape}")
        m, dim = pts.shape
        if ids is None:
            ids = range(m)
        ids = list(ids)
        if len(ids) != m:
            raise ValueError(f"{m} points but {len(ids)} ids")
        tree = cls(dim, capacity=capacity, min_fill=min_fill)
        if m == 0:
            return tree
        entries = [(pts[i].copy(), ids[i]) for i in range(m)]
        leaves = tree._str_pack_leaves(entries)
        tree._root = tree._str_build_upper(leaves)
        tree._size = m
        return tree

    def _str_pack_leaves(self, entries: list) -> list[_Node]:
        groups = self._str_tile([e[0] for e in entries], entries)
        leaves = []
        for group in groups:
            node = _Node(leaf=True, dim=self.dim)
            node.entries = group
            node.recompute_mbr()
            leaves.append(node)
        return leaves

    def _str_build_upper(self, nodes: list[_Node]) -> _Node:
        while len(nodes) > 1:
            groups = self._str_tile(
                [(n.lower + n.upper) / 2.0 for n in nodes], nodes
            )
            parents = []
            for group in groups:
                parent = _Node(leaf=False, dim=self.dim)
                parent.entries = group
                parent.recompute_mbr()
                parents.append(parent)
            nodes = parents
        return nodes[0]

    def _str_tile(self, keys: list[np.ndarray], payload: list) -> list[list]:
        """Recursively sort-tile *payload* (keyed by point) into groups
        of at most ``capacity``."""

        def tile(items: list, axis: int) -> list[list]:
            if len(items) <= self.capacity:
                return [items]
            if axis >= self.dim - 1:
                items.sort(key=lambda kv: kv[0][axis])
                return [
                    items[i : i + self.capacity]
                    for i in range(0, len(items), self.capacity)
                ]
            items.sort(key=lambda kv: kv[0][axis])
            n_pages = math.ceil(len(items) / self.capacity)
            n_slices = max(1, math.ceil(n_pages ** (1.0 / (self.dim - axis))))
            slice_size = math.ceil(len(items) / n_slices)
            groups = []
            for i in range(0, len(items), slice_size):
                groups.extend(tile(items[i : i + slice_size], axis + 1))
            return groups

        keyed = list(zip(keys, payload))
        return [[kv[1] for kv in group] for group in tile(keyed, 0)]

    def delete(self, point, item_id) -> bool:
        """Remove one (point, id) entry; returns False if absent.

        Standard R-tree deletion with tree condensation: underfull
        nodes on the path are dissolved and their entries reinserted
        at their original level; a root with a single internal child
        is collapsed.
        """
        pt = np.asarray(point, dtype=np.float64)
        if pt.shape != (self.dim,):
            raise ValueError(f"expected a point of shape ({self.dim},), got {pt.shape}")
        path = self._find_leaf(self._root, pt, item_id, [self._root])
        if path is None:
            return False
        leaf = path[-1]
        for pos, (stored, stored_id) in enumerate(leaf.entries):
            if stored_id == item_id and np.array_equal(stored, pt):
                leaf.entries.pop(pos)
                break
        self._size -= 1
        orphans: list[tuple[object, int]] = []  # (entry, containing level)
        self._condense(path, orphans)
        # Reinsert before any root collapse so orphan levels are still
        # valid depths of the current tree.
        for entry, level in orphans:
            self._insert_entry(entry, level, reinserting=set())
        while not self._root.leaf and len(self._root.entries) == 1:
            self._root = self._root.entries[0]
        if not self._root.entries and not self._root.leaf:
            self._root = _Node(leaf=True, dim=self.dim)
        return True

    def _find_leaf(self, node: _Node, point, item_id, path: list) -> list | None:
        """Path from root to the leaf holding (point, id), or None."""
        if node.leaf:
            for stored, stored_id in node.entries:
                if stored_id == item_id and np.array_equal(stored, point):
                    return path
            return None
        for child in node.entries:
            if np.all(point >= child.lower - 1e-12) and np.all(
                point <= child.upper + 1e-12
            ):
                found = self._find_leaf(child, point, item_id, path + [child])
                if found is not None:
                    return found
        return None

    def _condense(self, path: list, orphans: list) -> None:
        """Dissolve underfull nodes bottom-up, queueing reinsertions.

        Orphaned entries carry the level of the node that should
        contain them (0 for leaf entries, child-level + 1 for subtree
        nodes); ``_insert_entry`` does not touch ``_size``, so moving
        entries around here is size-neutral.
        """
        for depth in range(len(path) - 1, 0, -1):
            node = path[depth]
            parent = path[depth - 1]
            if len(node.entries) < self.min_entries:
                parent.entries.remove(node)
                if node.leaf:
                    orphans.extend((entry, 0) for entry in node.entries)
                else:
                    orphans.extend(
                        (child, self._level_of(child) + 1)
                        for child in node.entries
                    )
            else:
                node.recompute_mbr()
        self._root.recompute_mbr()

    # ------------------------------------------------------------------
    # R* insertion machinery
    # ------------------------------------------------------------------

    def _entry_mbr(self, entry, leaf: bool):
        if leaf:
            point = entry[0]
            return point, point
        return entry.lower, entry.upper

    def _choose_path(self, lower, upper, target_level: int) -> list[_Node]:
        """Path from root to the node at *target_level* that should
        receive an entry with the given MBR (levels count from leaves=0)."""
        path = [self._root]
        node = self._root
        level = self._level_of(node)
        while level > target_level:
            if all(child.leaf for child in node.entries):
                # Children are leaves: minimise overlap enlargement.
                node = self._pick_min_overlap(node, lower, upper)
            else:
                node = self._pick_min_enlargement(node, lower, upper)
            path.append(node)
            level -= 1
        return path

    def _level_of(self, node: _Node) -> int:
        level = 0
        while not node.leaf:
            node = node.entries[0]
            level += 1
        return level

    def _pick_min_enlargement(self, node: _Node, lower, upper) -> _Node:
        best = None
        best_key = None
        for child in node.entries:
            enl = _enlargement(child.lower, child.upper, lower, upper)
            key = (enl, _area(child.lower, child.upper))
            if best_key is None or key < best_key:
                best, best_key = child, key
        return best

    def _pick_min_overlap(self, node: _Node, lower, upper) -> _Node:
        best = None
        best_key = None
        for child in node.entries:
            new_lower = np.minimum(child.lower, lower)
            new_upper = np.maximum(child.upper, upper)
            overlap_increase = 0.0
            for other in node.entries:
                if other is child:
                    continue
                after = _overlap(new_lower, new_upper, other.lower, other.upper)
                before = _overlap(
                    child.lower, child.upper, other.lower, other.upper
                )
                overlap_increase += after - before
            enl = _enlargement(child.lower, child.upper, lower, upper)
            key = (overlap_increase, enl, _area(child.lower, child.upper))
            if best_key is None or key < best_key:
                best, best_key = child, key
        return best

    def _insert_entry(self, entry, level: int, reinserting: set[int]) -> None:
        lower, upper = self._entry_mbr(entry, leaf=(level == 0))
        path = self._choose_path(lower, upper, level)
        target = path[-1]
        target.entries.append(entry)
        for node in path:
            node.extend_mbr(lower, upper)
        if len(target.entries) > self.capacity:
            self._handle_overflow(path, level, reinserting)

    def _handle_overflow(
        self, path: list[_Node], level: int, reinserting: set[int]
    ) -> None:
        node = path[-1]
        is_root = node is self._root
        use_reinsert = self.split_strategy == "rstar"
        if use_reinsert and not is_root and level not in reinserting:
            reinserting.add(level)
            self._reinsert(node, path, level, reinserting)
        else:
            self._split(path, level, reinserting)

    def _reinsert(
        self, node: _Node, path: list[_Node], level: int, reinserting: set[int]
    ) -> None:
        center = (node.lower + node.upper) / 2.0

        def center_dist(entry) -> float:
            lo, hi = self._entry_mbr(entry, node.leaf)
            mid = (np.asarray(lo) + np.asarray(hi)) / 2.0
            return float(np.sum((mid - center) ** 2))

        node.entries.sort(key=center_dist)
        to_reinsert = node.entries[-self.reinsert_count :]
        node.entries = node.entries[: -self.reinsert_count]
        node.recompute_mbr()
        for ancestor in reversed(path[:-1]):
            ancestor.recompute_mbr()
        for entry in to_reinsert:
            self._insert_entry(entry, level, reinserting)

    def _split(self, path: list[_Node], level: int, reinserting: set[int]) -> None:
        node = path[-1]
        if self.split_strategy == "rstar":
            left_entries, right_entries = self._rstar_split(node)
        else:
            left_entries, right_entries = self._guttman_split(
                node, quadratic=(self.split_strategy == "quadratic")
            )
        node.entries = left_entries
        node.recompute_mbr()
        sibling = _Node(leaf=node.leaf, dim=self.dim)
        sibling.entries = right_entries
        sibling.recompute_mbr()

        if node is self._root:
            new_root = _Node(leaf=False, dim=self.dim)
            new_root.entries = [node, sibling]
            new_root.recompute_mbr()
            self._root = new_root
            return
        parent = path[-2]
        parent.entries.append(sibling)
        for ancestor in reversed(path[:-1]):
            ancestor.recompute_mbr()
        if len(parent.entries) > self.capacity:
            self._handle_overflow(path[:-1], level + 1, reinserting)

    def _rstar_split(self, node: _Node) -> tuple[list, list]:
        """Choose split axis by minimum margin, split index by minimum
        overlap (ties: minimum area)."""
        m = self.min_entries
        entries = node.entries
        n = len(entries)

        def mbrs_for(sorted_entries):
            lowers, uppers = [], []
            for entry in sorted_entries:
                lo, hi = self._entry_mbr(entry, node.leaf)
                lowers.append(np.asarray(lo))
                uppers.append(np.asarray(hi))
            return lowers, uppers

        best_axis, best_axis_margin = 0, math.inf
        for axis in range(self.dim):
            for key in (
                lambda e, a=axis: self._entry_mbr(e, node.leaf)[0][a],
                lambda e, a=axis: self._entry_mbr(e, node.leaf)[1][a],
            ):
                ordered = sorted(entries, key=key)
                lowers, uppers = mbrs_for(ordered)
                margin_sum = 0.0
                for split_at in range(m, n - m + 1):
                    l_lo = np.minimum.reduce(lowers[:split_at])
                    l_hi = np.maximum.reduce(uppers[:split_at])
                    r_lo = np.minimum.reduce(lowers[split_at:])
                    r_hi = np.maximum.reduce(uppers[split_at:])
                    margin_sum += _margin(l_lo, l_hi) + _margin(r_lo, r_hi)
                if margin_sum < best_axis_margin:
                    best_axis_margin = margin_sum
                    best_axis = axis

        best_split = None
        best_key = None
        for key in (
            lambda e: self._entry_mbr(e, node.leaf)[0][best_axis],
            lambda e: self._entry_mbr(e, node.leaf)[1][best_axis],
        ):
            ordered = sorted(entries, key=key)
            lowers, uppers = mbrs_for(ordered)
            for split_at in range(m, n - m + 1):
                l_lo = np.minimum.reduce(lowers[:split_at])
                l_hi = np.maximum.reduce(uppers[:split_at])
                r_lo = np.minimum.reduce(lowers[split_at:])
                r_hi = np.maximum.reduce(uppers[split_at:])
                overlap = _overlap(l_lo, l_hi, r_lo, r_hi)
                area = _area(l_lo, l_hi) + _area(r_lo, r_hi)
                cand_key = (overlap, area)
                if best_key is None or cand_key < best_key:
                    best_key = cand_key
                    best_split = (ordered[:split_at], ordered[split_at:])
        return best_split

    def _guttman_split(self, node: _Node, *, quadratic: bool) -> tuple[list, list]:
        """Guttman's quadratic or linear node split (1984).

        Quadratic: seed with the pair wasting the most area together,
        then repeatedly place the entry with the strongest preference.
        Linear: seed with the pair of greatest normalised separation,
        then place remaining entries in arbitrary order by least
        enlargement.  Both honour the minimum fill.
        """
        entries = node.entries
        mbrs = [self._entry_mbr(entry, node.leaf) for entry in entries]
        lowers = [np.asarray(lo) for lo, _ in mbrs]
        uppers = [np.asarray(hi) for _, hi in mbrs]
        n = len(entries)

        if quadratic:
            worst, seeds = -math.inf, (0, 1)
            for i in range(n):
                for j in range(i + 1, n):
                    union_lo = np.minimum(lowers[i], lowers[j])
                    union_hi = np.maximum(uppers[i], uppers[j])
                    dead = (
                        _area(union_lo, union_hi)
                        - _area(lowers[i], uppers[i])
                        - _area(lowers[j], uppers[j])
                    )
                    if dead > worst:
                        worst, seeds = dead, (i, j)
        else:
            best_separation = -math.inf
            seeds = (0, 1)
            for axis in range(self.dim):
                highest_low = max(range(n), key=lambda e: lowers[e][axis])
                lowest_high = min(range(n), key=lambda e: uppers[e][axis])
                if highest_low == lowest_high:
                    continue
                extent = (
                    max(uppers[e][axis] for e in range(n))
                    - min(lowers[e][axis] for e in range(n))
                )
                if extent <= 0:
                    continue
                separation = (
                    lowers[highest_low][axis] - uppers[lowest_high][axis]
                ) / extent
                if separation > best_separation:
                    best_separation = separation
                    seeds = (lowest_high, highest_low)

        groups: tuple[list[int], list[int]] = ([seeds[0]], [seeds[1]])
        group_lo = [lowers[seeds[0]].copy(), lowers[seeds[1]].copy()]
        group_hi = [uppers[seeds[0]].copy(), uppers[seeds[1]].copy()]
        remaining = [e for e in range(n) if e not in seeds]

        def enlargement(group: int, e: int) -> float:
            return _enlargement(group_lo[group], group_hi[group],
                                lowers[e], uppers[e])

        def assign(group: int, e: int) -> None:
            groups[group].append(e)
            np.minimum(group_lo[group], lowers[e], out=group_lo[group])
            np.maximum(group_hi[group], uppers[e], out=group_hi[group])

        while remaining:
            # Minimum-fill rescue: hand everything to the starving group.
            for group in (0, 1):
                if len(groups[group]) + len(remaining) == self.min_entries:
                    for e in remaining:
                        assign(group, e)
                    remaining = []
                    break
            if not remaining:
                break
            if quadratic:
                # PickNext: strongest preference first.
                def preference(e: int) -> float:
                    return abs(enlargement(0, e) - enlargement(1, e))

                e = max(remaining, key=preference)
            else:
                e = remaining[0]
            remaining.remove(e)
            d0, d1 = enlargement(0, e), enlargement(1, e)
            if d0 < d1:
                choice = 0
            elif d1 < d0:
                choice = 1
            else:
                choice = 0 if len(groups[0]) <= len(groups[1]) else 1
            assign(choice, e)

        return (
            [entries[e] for e in groups[0]],
            [entries[e] for e in groups[1]],
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def range_search(
        self, rect_lower, rect_upper, radius: float, *,
        metric: str = "euclidean",
    ) -> list:
        """All item ids within *radius* of the query rectangle.

        The query rectangle is the feature-space envelope ``[E^L, E^U]``
        of Section 4.3; with ``rect_lower == rect_upper`` this is an
        ordinary spherical range query around a point.  Each node
        visited counts one page access.  *metric* selects the distance
        (Euclidean or Manhattan) used for both pruning and membership.
        """
        manhattan = _check_metric(metric)
        q_lower, q_upper = self._check_rect(rect_lower, rect_upper)
        if radius < 0:
            raise ValueError(f"radius must be >= 0, got {radius}")
        limit = _radius_cost(radius, manhattan)
        results = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            self.page_accesses += 1
            if node.leaf:
                for point, item_id in node.entries:
                    if _mindist_cost(point, point, q_lower, q_upper,
                                     manhattan) <= limit:
                        results.append(item_id)
            else:
                for child in node.entries:
                    if (
                        _mindist_cost(child.lower, child.upper, q_lower,
                                      q_upper, manhattan)
                        <= limit
                    ):
                        stack.append(child)
        return results

    def nearest(
        self, rect_lower, rect_upper, *, metric: str = "euclidean"
    ) -> Iterator[tuple[float, object]]:
        """Incrementally yield ``(distance, id)`` by increasing distance
        to the query rectangle (Hjaltason-Samet best-first traversal).

        This is the ranking primitive of optimal multi-step k-NN: the
        caller pops candidates until the next lower bound exceeds its
        current k-th true distance.
        """
        manhattan = _check_metric(metric)
        q_lower, q_upper = self._check_rect(rect_lower, rect_upper)
        counter = itertools.count()  # tie-breaker, avoids comparing nodes
        heap = [(0.0, next(counter), False, self._root)]
        while heap:
            cost, _, is_point, payload = heapq.heappop(heap)
            if is_point:
                yield _cost_to_distance(cost, manhattan), payload
                continue
            node = payload
            self.page_accesses += 1
            if node.leaf:
                for point, item_id in node.entries:
                    d = _mindist_cost(point, point, q_lower, q_upper, manhattan)
                    heapq.heappush(heap, (d, next(counter), True, item_id))
            else:
                for child in node.entries:
                    d = _mindist_cost(child.lower, child.upper, q_lower,
                                      q_upper, manhattan)
                    heapq.heappush(heap, (d, next(counter), False, child))

    def _check_rect(self, rect_lower, rect_upper):
        q_lower = np.asarray(rect_lower, dtype=np.float64)
        q_upper = np.asarray(rect_upper, dtype=np.float64)
        if q_lower.shape != (self.dim,) or q_upper.shape != (self.dim,):
            raise ValueError(
                f"query rectangle must have shape ({self.dim},), got "
                f"{q_lower.shape} and {q_upper.shape}"
            )
        if np.any(q_lower > q_upper):
            raise ValueError("query rectangle has lower > upper")
        return q_lower, q_upper

    def items(self) -> Iterator[tuple[np.ndarray, object]]:
        """Iterate all (point, id) pairs (tree order)."""
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.leaf:
                yield from node.entries
            else:
                stack.extend(node.entries)

    def check_invariants(self) -> None:
        """Validate structural invariants (for tests): MBR containment,
        fill factors, and uniform leaf depth.

        Raises ``AssertionError`` on violation.
        """
        depths = set()

        def visit(node: _Node, depth: int, is_root: bool) -> None:
            if node.leaf:
                depths.add(depth)
                for point, _ in node.entries:
                    assert np.all(point >= node.lower - 1e-12)
                    assert np.all(point <= node.upper + 1e-12)
            else:
                assert node.entries, "internal node must have children"
                for child in node.entries:
                    assert np.all(child.lower >= node.lower - 1e-12)
                    assert np.all(child.upper <= node.upper + 1e-12)
                    visit(child, depth + 1, False)
            if not is_root and self._size > self.capacity:
                assert len(node.entries) >= 2, "underfull node"
            assert len(node.entries) <= self.capacity, "overfull node"

        visit(self._root, 0, True)
        assert len(depths) == 1, f"leaves at different depths: {depths}"
        assert sum(1 for _ in self.items()) == self._size
