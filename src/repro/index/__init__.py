"""Multidimensional indexing: R*-tree, grid file, cluster index, GEMINI."""

from .cluster import ClusterIndex
from .gemini import WarpingIndex
from .gridfile import GridFile
from .linear_scan import LinearScan
from .rstartree import RStarTree
from .stats import QueryStats
from .subsequence import SubsequenceIndex, SubsequenceMatch

__all__ = [
    "WarpingIndex",
    "ClusterIndex",
    "GridFile",
    "LinearScan",
    "RStarTree",
    "QueryStats",
    "SubsequenceIndex",
    "SubsequenceMatch",
]
