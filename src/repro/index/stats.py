"""Query-cost accounting.

The paper reports implementation-bias-free measures: the number of
candidates the filter step retrieves (CPU cost proxy — each needs an
exact DTW computation) and the number of page accesses (IO cost proxy).
:class:`QueryStats` carries both, plus the counts needed to compute
filter precision.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["QueryStats"]


@dataclass
class QueryStats:
    """Costs and outcome of one index query.

    Attributes
    ----------
    candidates:
        Series returned by the filter step (superset of the answer).
    page_accesses:
        Index pages touched during the filter step.
    dtw_computations:
        Exact DTW evaluations performed during refinement.
    results:
        Series in the final (exact) answer.
    """

    candidates: int = 0
    page_accesses: int = 0
    dtw_computations: int = 0
    results: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def precision(self) -> float:
        """Fraction of retrieved candidates that were true answers.

        1.0 when the filter retrieved nothing (vacuously precise).
        """
        if self.candidates == 0:
            return 1.0
        return self.results / self.candidates

    def __add__(self, other: "QueryStats") -> "QueryStats":
        if not isinstance(other, QueryStats):
            return NotImplemented
        return QueryStats(
            candidates=self.candidates + other.candidates,
            page_accesses=self.page_accesses + other.page_accesses,
            dtw_computations=self.dtw_computations + other.dtw_computations,
            results=self.results + other.results,
        )

    def scaled(self, factor: float) -> "QueryStats":
        """Average helper: all counters multiplied by *factor*."""
        return QueryStats(
            candidates=self.candidates * factor,
            page_accesses=self.page_accesses * factor,
            dtw_computations=self.dtw_computations * factor,
            results=self.results * factor,
        )
