"""Subsequence matching under DTW (Section 3.2, option 1).

The paper chooses whole-sequence matching over pre-segmented melodies,
noting that subsequence queries "are generally slower ... because the
size of the potential candidate sequences is much larger".  This
module implements that other option in the FRM tradition (Faloutsos,
Ranganathan & Manolopoulos 1994): slide windows over each long
sequence, bring every window to the shift/tempo normal form, index the
reduced features, and answer a hum query with the warping index's
filter-and-refine — so a user can hum *any part* of a full song.

Tempo mismatch between hum and song is handled the same way the whole-
sequence system handles it — the UTW normal form — plus optional
multi-scale windows: indexing windows of several lengths lets a
half-speed hum align with a window covering twice the music.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from ..core.envelope import k_envelope, warping_width_to_k
from ..core.envelope_transforms import EnvelopeTransform, NewPAAEnvelopeTransform
from ..core.normal_form import NormalForm
from ..dtw.distance import ldtw_distance, ldtw_distance_batch, ldtw_refiner
from ..dtw.kernels import DEFAULT_BACKEND, get_kernel
from ..obs import OBS_DISABLED, Observability
from ..obs.clock import monotonic_s
from .gridfile import GridFile
from .linear_scan import LinearScan
from .rstartree import RStarTree
from .stats import QueryStats

__all__ = ["SubsequenceMatch", "SubsequenceIndex"]


@dataclass(frozen=True)
class SubsequenceMatch:
    """One matching window of a database sequence.

    Attributes
    ----------
    sequence_id:
        Identifier of the containing sequence.
    start:
        Window offset in original samples.
    length:
        Window length in original samples.
    distance:
        Constrained DTW distance between the window's and the query's
        normal forms.
    """

    sequence_id: object
    start: int
    length: int
    distance: float


class SubsequenceIndex:
    """ε-range and k-NN *subsequence* queries under constrained DTW.

    Parameters
    ----------
    sequences:
        Long time series (e.g. full songs as pitch series).
    window_lengths:
        Window sizes (in samples) to index.  Several sizes make the
        search robust to hum/song tempo ratios beyond what the normal
        form absorbs.
    stride:
        Offset step between windows, in samples (trades index size
        against positional resolution).
    delta:
        DTW warping width.
    normal_form:
        Normalisation applied to windows and queries.
    dtw_backend:
        DTW kernel backend used for exact refinement (``"vectorized"``
        default / ``"scalar"`` reference; results are identical).
    obs:
        An :class:`~repro.obs.Observability` facade for the window
        query paths (``index.*`` metrics).  Default ``None`` =
        disabled.
    """

    def __init__(
        self,
        sequences: Sequence,
        *,
        window_lengths: Sequence[int] = (64,),
        stride: int = 16,
        delta: float = 0.1,
        env_transform: EnvelopeTransform | None = None,
        n_features: int = 8,
        normal_form: NormalForm | None = None,
        index_kind: str = "rstar",
        capacity: int = 50,
        ids: Sequence | None = None,
        dtw_backend: str | None = None,
        obs: Observability | None = None,
    ) -> None:
        self.obs = OBS_DISABLED if obs is None else obs
        if not len(sequences):
            raise ValueError("sequence database must not be empty")
        backend = DEFAULT_BACKEND if dtw_backend is None else dtw_backend
        get_kernel(backend)  # validate the name now, not at query time
        self.dtw_backend = backend
        self.store = None
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        if not window_lengths or any(w < 2 for w in window_lengths):
            raise ValueError("window lengths must be >= 2")
        self.normal_form = normal_form or NormalForm(length=64)
        if self.normal_form.length is None:
            raise ValueError("SubsequenceIndex requires a fixed normal-form length")
        self.normal_length = self.normal_form.length
        self.delta = delta
        self.band = warping_width_to_k(delta, self.normal_length)
        self.env_transform = env_transform or NewPAAEnvelopeTransform(
            self.normal_length, n_features
        )
        if self.env_transform.input_length != self.normal_length:
            raise ValueError(
                "envelope transform length does not match the normal form"
            )
        if ids is None:
            ids = list(range(len(sequences)))
        else:
            ids = list(ids)
            if len(ids) != len(sequences):
                raise ValueError(f"{len(sequences)} sequences but {len(ids)} ids")
        self.ids = ids
        self._sequences = [
            np.asarray(seq, dtype=np.float64) for seq in sequences
        ]

        windows: list[tuple[int, int, int]] = []  # (seq_row, start, length)
        normalized: list[np.ndarray] = []
        for row, seq in enumerate(self._sequences):
            if seq.ndim != 1:
                raise ValueError("sequences must be 1-D arrays")
            for length in window_lengths:
                if seq.size < length:
                    continue
                for start in range(0, seq.size - length + 1, stride):
                    windows.append((row, start, length))
                    normalized.append(
                        self.normal_form.apply(seq[start : start + length])
                    )
        if not windows:
            raise ValueError(
                "no windows extracted: every sequence is shorter than the "
                "smallest window length"
            )
        self._windows = windows
        self._normalized = np.vstack(normalized)
        self._lb_slack = 0.0
        features = self.env_transform.transform.transform_batch(self._normalized)
        window_ids = list(range(len(windows)))
        if index_kind == "rstar":
            self._index = RStarTree.bulk_load(features, window_ids,
                                              capacity=capacity)
        elif index_kind == "grid":
            self._index = GridFile(features, window_ids)
        elif index_kind == "linear":
            self._index = LinearScan(features, window_ids, capacity=capacity)
        else:
            raise ValueError(f"unknown index kind {index_kind!r}")

    @classmethod
    def from_store(cls, store, *, capacity: int | None = None,
                   dtw_backend: str | None = None,
                   obs: Observability | None = None) -> "SubsequenceIndex":
        """Open a columnar subsequence-store generation as a live index.

        Window normal forms stay in the store's memory-mapped float32
        columns; the window R*-tree is STR-bulk-loaded from the stored
        float32 feature column, with range searches and k-NN cutoffs
        slackened by the manifest's ``feature_margin`` so answers stay
        exact (zero false negatives) for the stored corpus.  The raw
        sequences are not retained — re-windowing requires the original
        corpus — but every query path works from the columns alone.
        """
        from ..ingest.builder import transform_from_config

        manifest = store.manifest
        if manifest.kind != "subsequence":
            raise ValueError(
                f"store kind {manifest.kind!r} is not a subsequence store "
                f"(use WarpingIndex.from_store)"
            )
        if manifest.metric != "euclidean":
            raise ValueError(
                "SubsequenceIndex only supports the euclidean metric"
            )
        self = cls.__new__(cls)
        self.obs = OBS_DISABLED if obs is None else obs
        backend = DEFAULT_BACKEND if dtw_backend is None else dtw_backend
        get_kernel(backend)
        self.dtw_backend = backend
        cfg = manifest.config
        nf = cfg.get("normal_form", {})
        self.normal_form = NormalForm(
            length=nf.get("length", manifest.normal_length),
            shift=nf.get("shift", True),
            scale=nf.get("scale", False),
        )
        self.normal_length = manifest.normal_length
        self.delta = float(cfg.get("delta", 0.1))
        self.band = warping_width_to_k(self.delta, self.normal_length)
        spec = cfg.get("env_transform")
        self.env_transform = (
            transform_from_config(spec, metric=manifest.metric) if spec
            else NewPAAEnvelopeTransform(self.normal_length,
                                         manifest.n_features)
        )
        if self.env_transform.input_length != self.normal_length:
            raise ValueError(
                "store's envelope transform does not match its normal form"
            )
        self.ids = store.ids
        self._sequences = None
        meta = np.asarray(store.meta)
        self._windows = [(int(row), int(start), int(length))
                         for row, start, length in meta]
        if self._windows and int(meta[:, 0].max()) >= len(self.ids):
            raise ValueError("store meta references out-of-range ids")
        self._normalized = store.normalized
        margin = store.feature_margin
        dim = self.env_transform.output_dim
        self._lb_slack = margin * math.sqrt(dim) if margin > 0 else 0.0
        window_ids = list(range(len(self._windows)))
        self._index = RStarTree.bulk_load(
            store.features, window_ids,
            capacity=(int(cfg.get("capacity", 50)) if capacity is None
                      else capacity),
        )
        self.store = store
        return self

    @property
    def window_count(self) -> int:
        return len(self._windows)

    def __len__(self) -> int:
        if self._sequences is None:
            return len(self.ids)
        return len(self._sequences)

    def _match(self, window_row: int, distance: float) -> SubsequenceMatch:
        row, start, length = self._windows[window_row]
        return SubsequenceMatch(
            sequence_id=self.ids[row], start=start, length=length,
            distance=distance,
        )

    def _query_rectangle(self, query):
        q = self.normal_form.apply(query)
        feature_env = self.env_transform.reduce(k_envelope(q, self.band))
        return q, feature_env.lower, feature_env.upper

    @staticmethod
    def _dedup(matches: list[SubsequenceMatch]) -> list[SubsequenceMatch]:
        """Keep the best window per sequence."""
        best: dict[object, SubsequenceMatch] = {}
        for match in matches:
            kept = best.get(match.sequence_id)
            if kept is None or match.distance < kept.distance:
                best[match.sequence_id] = match
        return sorted(best.values(), key=lambda m: m.distance)

    def range_query(
        self, query, epsilon: float, *, best_per_sequence: bool = True
    ) -> tuple[list[SubsequenceMatch], QueryStats]:
        """All windows within DTW distance *epsilon* of the query.

        With *best_per_sequence* (default) overlapping hits collapse to
        the best window of each sequence — the "which song is this"
        answer; set it False for every matching offset.
        """
        if epsilon < 0:
            raise ValueError(f"epsilon must be >= 0, got {epsilon}")
        started = monotonic_s()
        q, rect_lower, rect_upper = self._query_rectangle(query)
        self._index.reset_stats()
        candidates = self._index.range_search(
            rect_lower, rect_upper, epsilon + self._lb_slack
        )
        stats = QueryStats(
            candidates=len(candidates), page_accesses=self._index.page_accesses
        )
        matches = []
        if candidates:
            dists = ldtw_distance_batch(
                q, self._normalized[candidates], self.band,
                backend=self.dtw_backend,
            )
            stats.dtw_computations = len(candidates)
            matches = [
                self._match(window_row, float(dist))
                for window_row, dist in zip(candidates, dists)
                if dist <= epsilon
            ]
        if best_per_sequence:
            matches = self._dedup(matches)
        else:
            matches.sort(key=lambda m: m.distance)
        stats.results = len(matches)
        self.obs.record_index_query(
            "subsequence_range", stats, monotonic_s() - started
        )
        return matches, stats

    def knn_query(
        self, query, k: int, *, best_per_sequence: bool = True
    ) -> tuple[list[SubsequenceMatch], QueryStats]:
        """The *k* closest windows (or sequences) to the query.

        Optimal multi-step over the window index; with
        *best_per_sequence*, k counts distinct sequences.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        started = monotonic_s()
        q, rect_lower, rect_upper = self._query_rectangle(query)
        refine = ldtw_refiner(q, self.band, backend=self.dtw_backend)
        self._index.reset_stats()
        stats = QueryStats()
        # best distance (and its window) per dedup key; when not
        # deduplicating, every window is its own key.
        per_key: dict[object, tuple[float, int]] = {}

        def kth() -> float:
            if len(per_key) < k:
                return math.inf
            distances = sorted(dist for dist, _ in per_key.values())
            return distances[k - 1]

        for lower_bound, window_row in self._index.nearest(rect_lower, rect_upper):
            cutoff = kth()
            # _lb_slack deflates bounds computed from float32-stored
            # features so the cutoff stays sound for store-backed indexes.
            if lower_bound - self._lb_slack > cutoff:
                break
            stats.candidates += 1
            dist = refine(
                self._normalized[window_row],
                None if math.isinf(cutoff) else cutoff,
            )
            stats.dtw_computations += 1
            if not math.isfinite(dist):
                continue
            if best_per_sequence:
                key = self.ids[self._windows[window_row][0]]
            else:
                key = window_row
            kept = per_key.get(key)
            if kept is None or dist < kept[0]:
                per_key[key] = (dist, window_row)
        stats.page_accesses = self._index.page_accesses

        ranked = sorted(per_key.values())[:k]
        matches = [self._match(row, dist) for dist, row in ranked]
        stats.results = len(matches)
        self.obs.record_index_query(
            "subsequence_knn", stats, monotonic_s() - started
        )
        return matches, stats

    def ground_truth_range(
        self, query, epsilon: float, *, best_per_sequence: bool = True
    ) -> list[SubsequenceMatch]:
        """Exact answer by scanning every window (test oracle)."""
        q = self.normal_form.apply(query)
        matches = []
        for window_row in range(len(self._windows)):
            dist = ldtw_distance(q, self._normalized[window_row], self.band)
            if dist <= epsilon:
                matches.append(self._match(window_row, dist))
        if best_per_sequence:
            return self._dedup(matches)
        matches.sort(key=lambda m: m.distance)
        return matches
