"""Grid file: the alternative multidimensional index ([35] in the paper).

A simplified grid file over feature vectors: the space is cut into a
regular grid whose extent is fitted to the data at build time, and each
non-empty cell is one bucket ("page").  Queries touch every bucket whose
cell rectangle comes within the query radius; touched buckets count as
page accesses, like R*-tree nodes do.
"""

from __future__ import annotations

import math
from typing import Iterator

import numpy as np

__all__ = ["GridFile"]


def _check_metric(metric: str) -> bool:
    if metric not in ("euclidean", "manhattan"):
        raise ValueError(
            f"metric must be 'euclidean' or 'manhattan', got {metric!r}"
        )
    return metric == "manhattan"


def _gap_cost(gap: np.ndarray, manhattan: bool) -> float:
    """Cost of a per-axis gap vector (L1 sum or squared L2)."""
    if manhattan:
        return float(np.sum(gap))
    return float(np.dot(gap, gap))


class GridFile:
    """A regular-grid bucket index over points.

    Parameters
    ----------
    points:
        Array of shape ``(m, dim)``.
    ids:
        Optional identifiers, default ``range(m)``.
    resolution:
        Number of grid intervals per dimension.
    """

    def __init__(self, points, ids=None, *, resolution: int = 8) -> None:
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2:
            raise ValueError(f"points must be 2-D, got shape {pts.shape}")
        if resolution < 1:
            raise ValueError(f"resolution must be >= 1, got {resolution}")
        m, dim = pts.shape
        if ids is None:
            ids = range(m)
        ids = list(ids)
        if len(ids) != m:
            raise ValueError(f"{m} points but {len(ids)} ids")
        self.dim = dim
        self.resolution = resolution
        self.page_accesses = 0
        self._size = m
        if m:
            self._origin = pts.min(axis=0)
            extent = pts.max(axis=0) - self._origin
        else:
            self._origin = np.zeros(dim)
            extent = np.ones(dim)
        # Guard degenerate axes so cell width is always positive.
        extent = np.where(extent > 0, extent, 1.0)
        self._cell_width = extent / resolution
        self._buckets: dict[tuple, list] = {}
        # Actual MBR of each bucket's content: immune to the float
        # rounding that makes nominal cell rectangles exclude boundary
        # points, and tighter for pruning.
        self._bucket_mbr: dict[tuple, tuple[np.ndarray, np.ndarray]] = {}
        for i in range(m):
            cell = self._cell_of(pts[i])
            self._buckets.setdefault(cell, []).append((pts[i].copy(), ids[i]))
            if cell in self._bucket_mbr:
                lo, hi = self._bucket_mbr[cell]
                np.minimum(lo, pts[i], out=lo)
                np.maximum(hi, pts[i], out=hi)
            else:
                self._bucket_mbr[cell] = (pts[i].copy(), pts[i].copy())

    def __len__(self) -> int:
        return self._size

    def insert(self, point, item_id) -> None:
        """Add one point.  The grid geometry is fixed at build time;
        points outside the original extent land in the boundary cells
        (their bucket MBRs stretch to keep queries exact)."""
        pt = np.asarray(point, dtype=np.float64)
        if pt.shape != (self.dim,):
            raise ValueError(f"expected a point of shape ({self.dim},)")
        cell = self._cell_of(pt)
        self._buckets.setdefault(cell, []).append((pt.copy(), item_id))
        if cell in self._bucket_mbr:
            lo, hi = self._bucket_mbr[cell]
            np.minimum(lo, pt, out=lo)
            np.maximum(hi, pt, out=hi)
        else:
            self._bucket_mbr[cell] = (pt.copy(), pt.copy())
        self._size += 1

    def delete(self, point, item_id) -> bool:
        """Remove one (point, id) entry; returns False if absent.

        Bucket MBRs are left as-is (still sound, just conservative);
        emptied buckets are dropped.
        """
        pt = np.asarray(point, dtype=np.float64)
        if pt.shape != (self.dim,):
            raise ValueError(f"expected a point of shape ({self.dim},)")
        cell = self._cell_of(pt)
        bucket = self._buckets.get(cell, [])
        for pos, (stored, stored_id) in enumerate(bucket):
            if stored_id == item_id and np.array_equal(stored, pt):
                bucket.pop(pos)
                if not bucket:
                    del self._buckets[cell]
                    del self._bucket_mbr[cell]
                self._size -= 1
                return True
        return False

    @property
    def bucket_count(self) -> int:
        return len(self._buckets)

    def reset_stats(self) -> None:
        self.page_accesses = 0

    def _cell_of(self, point: np.ndarray) -> tuple:
        idx = np.floor((point - self._origin) / self._cell_width).astype(np.int64)
        np.clip(idx, 0, self.resolution - 1, out=idx)
        return tuple(idx.tolist())

    def _cell_rect(self, cell: tuple) -> tuple[np.ndarray, np.ndarray]:
        idx = np.asarray(cell, dtype=np.float64)
        lower = self._origin + idx * self._cell_width
        return lower, lower + self._cell_width

    def range_search(self, rect_lower, rect_upper, radius: float, *,
                     metric: str = "euclidean") -> list:
        """All ids within *radius* of the query rectangle.

        Scans the directory of non-empty cells; buckets whose cell
        rectangle is within the radius are read (one page access each)
        and filtered point by point.  *metric* selects Euclidean or
        Manhattan geometry.
        """
        manhattan = _check_metric(metric)
        q_lower = np.asarray(rect_lower, dtype=np.float64)
        q_upper = np.asarray(rect_upper, dtype=np.float64)
        if q_lower.shape != (self.dim,) or q_upper.shape != (self.dim,):
            raise ValueError(f"query rectangle must have shape ({self.dim},)")
        if np.any(q_lower > q_upper):
            raise ValueError("query rectangle has lower > upper")
        if radius < 0:
            raise ValueError(f"radius must be >= 0, got {radius}")
        limit = radius if manhattan else radius * radius
        results = []
        for cell, bucket in self._buckets.items():
            c_lower, c_upper = self._bucket_mbr[cell]
            gap = np.maximum(q_lower - c_upper, 0.0) + np.maximum(
                c_lower - q_upper, 0.0
            )
            if _gap_cost(gap, manhattan) > limit:
                continue
            self.page_accesses += 1
            for point, item_id in bucket:
                pgap = np.maximum(q_lower - point, 0.0) + np.maximum(
                    point - q_upper, 0.0
                )
                if _gap_cost(pgap, manhattan) <= limit:
                    results.append(item_id)
        return results

    def nearest(self, rect_lower, rect_upper, *,
                metric: str = "euclidean") -> Iterator[tuple[float, object]]:
        """Yield ``(distance, id)`` by increasing rectangle distance.

        The grid file has no hierarchical pruning, so this ranks bucket
        by bucket in cell-distance order.
        """
        manhattan = _check_metric(metric)
        q_lower = np.asarray(rect_lower, dtype=np.float64)
        q_upper = np.asarray(rect_upper, dtype=np.float64)
        ranked_cells = []
        for cell, bucket in self._buckets.items():
            c_lower, c_upper = self._bucket_mbr[cell]
            gap = np.maximum(q_lower - c_upper, 0.0) + np.maximum(
                c_lower - q_upper, 0.0
            )
            ranked_cells.append((_gap_cost(gap, manhattan), cell))
        ranked_cells.sort()

        import heapq

        def finish(cost: float) -> float:
            return cost if manhattan else math.sqrt(cost)

        pending: list[tuple[float, int, object]] = []
        counter = 0
        for cell_cost, cell in ranked_cells:
            # Everything already in the heap closer than this cell can
            # be emitted safely before the bucket is read.
            while pending and pending[0][0] <= cell_cost:
                cost, _, item_id = heapq.heappop(pending)
                yield finish(cost), item_id
            self.page_accesses += 1
            for point, item_id in self._buckets[cell]:
                pgap = np.maximum(q_lower - point, 0.0) + np.maximum(
                    point - q_upper, 0.0
                )
                heapq.heappush(
                    pending, (_gap_cost(pgap, manhattan), counter, item_id)
                )
                counter += 1
        while pending:
            cost, _, item_id = heapq.heappop(pending)
            yield finish(cost), item_id
