"""The GEMINI warping index (Section 4.3 of the paper).

:class:`WarpingIndex` realises the five-step strategy verbatim:

1. every database series is brought to its normal form and reduced to a
   feature vector ``X = T(x)``;
2. the feature vectors are stored in a multidimensional index
   (R*-tree, grid file, or a linear-scan baseline);
3. a query is brought to its normal form, its ``k``-envelope is
   computed, and the envelope is reduced with a **container-invariant**
   envelope transform to a feature-space rectangle ``[E^L, E^U]``;
4. an ε-range query around that rectangle returns a candidate set that
   is guaranteed to contain every true answer (Theorem 1);
5. candidates are refined with the exact constrained-DTW distance.

Because the envelope lives on the *query* side, an existing Euclidean
feature index gains DTW support without being rebuilt — one of the
paper's selling points.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from ..core.envelope import Envelope, envelope_distance, k_envelope, warping_width_to_k
from ..core.envelope_transforms import EnvelopeTransform, NewPAAEnvelopeTransform
from ..core.normal_form import NormalForm
from ..dtw.distance import ldtw_distance, ldtw_distance_batch, ldtw_refiner
from ..dtw.kernels import DEFAULT_BACKEND, get_kernel
from ..obs import OBS_DISABLED, Observability
from ..obs.clock import monotonic_s
from .cluster import ClusterIndex
from .gridfile import GridFile
from .linear_scan import LinearScan
from .rstartree import RStarTree
from .stats import QueryStats

__all__ = ["WarpingIndex"]

_INDEX_KINDS = ("rstar", "grid", "linear", "cluster")


class WarpingIndex:
    """An index for ε-range and k-NN queries under constrained DTW.

    Parameters
    ----------
    database:
        Sequence of time series (any lengths; each is normalised).
    delta:
        Warping width ``(2k+1)/n`` of the supported DTW distance.
    env_transform:
        Container-invariant envelope transform; default
        ``NewPAAEnvelopeTransform`` with *n_features* frames.
    n_features:
        Feature dimensionality when *env_transform* is defaulted.
    normal_form:
        Normalisation applied to database and query series.  Its
        ``length`` fixes the UTW normal-form length ``n``.
    index_kind:
        ``"rstar"`` (default), ``"grid"``, or ``"linear"``.
    capacity:
        Page capacity of the underlying index.
    ids:
        Optional identifiers for the database series.
    metric:
        Ground metric of the DTW distance: ``"euclidean"`` (the
        paper's, default) or ``"manhattan"``.  The envelope transform
        must be sound under the chosen metric (the default New_PAA is
        built accordingly).
    dtw_backend:
        DTW kernel backend used for exact refinement (see
        :mod:`repro.dtw.kernels`): ``"vectorized"`` (default) or
        ``"scalar"``.  A pure serving knob — results are identical —
        and reassignable after construction (``index.dtw_backend =
        "scalar"``).
    workers:
        Default thread-pool size handed to cached cascade engines for
        ``*_many`` batch calls.  ``None`` (default) lets the engine
        pick (``os.cpu_count()``).  Another pure serving knob, and
        round-tripped by :mod:`repro.persistence` so a restarted
        service behaves identically.
    shards:
        Default worker-**process** count for the sharded serving tier:
        :meth:`repro.serve.QBHService.from_index` reads it when its own
        ``shards=`` is not given, partitioning the corpus across that
        many processes (:class:`~repro.shard.ShardRouter`).  ``None``
        or ``1`` serves in-process.  A pure serving knob — answers are
        byte-identical either way — and round-tripped by
        :mod:`repro.persistence`, so a saved sharded deployment comes
        back sharded.
    obs:
        An :class:`~repro.obs.Observability` facade.  Attaches to the
        R*-tree/grid query paths (``index.*`` metrics, ``query`` spans)
        and propagates to every cached cascade engine (see
        :meth:`set_observability`).  Default ``None`` = disabled.
    """

    def __init__(
        self,
        database: Sequence,
        *,
        delta: float,
        env_transform: EnvelopeTransform | None = None,
        n_features: int = 8,
        normal_form: NormalForm | None = None,
        index_kind: str = "rstar",
        capacity: int = 50,
        ids: Sequence | None = None,
        metric: str = "euclidean",
        dtw_backend: str | None = None,
        workers: int | None = None,
        shards: int | None = None,
        obs: Observability | None = None,
    ) -> None:
        self.obs = OBS_DISABLED if obs is None else obs
        if index_kind not in _INDEX_KINDS:
            raise ValueError(
                f"index_kind must be one of {_INDEX_KINDS}, got {index_kind!r}"
            )
        if metric not in ("euclidean", "manhattan"):
            raise ValueError(
                f"metric must be 'euclidean' or 'manhattan', got {metric!r}"
            )
        if not len(database):
            raise ValueError("database must not be empty")
        backend = DEFAULT_BACKEND if dtw_backend is None else dtw_backend
        get_kernel(backend)  # validate the name now, not at query time
        self.dtw_backend = backend
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        if shards is not None and shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.shards = shards
        #: Monotonic mutation counter: bumped exactly once by every
        #: public mutator (``insert`` / ``remove`` /
        #: ``swap_generation``).  The serving layer's result cache keys
        #: entries by this version, so any index mutation invalidates
        #: stale answers without the cache having to subscribe to
        #: anything.
        self.mutations = 0
        #: Store-generation counter (0 for in-memory indexes; tracks
        #: :attr:`store`'s generation for store-backed ones).
        self.generation = 0
        self._store = None
        self._feature_margin = 0.0
        self._lb_slack = 0.0
        self.normal_form = normal_form or NormalForm()
        if self.normal_form.length is None:
            raise ValueError("WarpingIndex requires a fixed normal-form length")
        self.normal_length = self.normal_form.length
        self.delta = delta
        self.metric = metric
        self.band = warping_width_to_k(delta, self.normal_length)
        self.env_transform = env_transform or NewPAAEnvelopeTransform(
            self.normal_length, n_features, metric=metric
        )
        if self.env_transform.input_length != self.normal_length:
            raise ValueError(
                f"envelope transform expects length "
                f"{self.env_transform.input_length}, but the normal form "
                f"produces {self.normal_length}"
            )
        if metric not in getattr(self.env_transform, "metrics", ("euclidean",)):
            raise ValueError(
                f"envelope transform {self.env_transform.name!r} does not "
                f"lower-bound the {metric!r} metric"
            )

        if ids is None:
            ids = list(range(len(database)))
        else:
            ids = list(ids)
            if len(ids) != len(database):
                raise ValueError(
                    f"{len(database)} series but {len(ids)} ids"
                )
        self.ids = ids
        self._id_to_row = {item_id: row for row, item_id in enumerate(ids)}
        if len(self._id_to_row) != len(ids):
            raise ValueError("ids must be unique")

        self._engines: dict = {}
        self._data = np.vstack(
            [self.normal_form.apply(series) for series in database]
        )
        features = self.env_transform.transform.transform_batch(self._data)
        self._features = features
        if index_kind == "rstar":
            self._index = RStarTree.bulk_load(features, ids, capacity=capacity)
        elif index_kind == "grid":
            self._index = GridFile(features, ids)
        elif index_kind == "cluster":
            self._index = ClusterIndex(features, ids)
        else:
            self._index = LinearScan(features, ids, capacity=capacity)
        self.index_kind = index_kind
        self._capacity = capacity

    @classmethod
    def from_store(cls, store, *, index_kind: str = "rstar",
                   capacity: int | None = None,
                   dtw_backend: str | None = None,
                   workers: int | None = None,
                   shards: int | None = None,
                   obs: Observability | None = None) -> "WarpingIndex":
        """Open a columnar-store generation as a live index.

        The corpus stays in the store's memory-mapped float32 columns
        (no float64 copy); the feature index is STR-bulk-loaded from
        the stored feature column.  Because stored features are float32
        quantizations of the exact float64 features, index-level range
        searches are inflated by a slack derived from the manifest's
        ``feature_margin`` — results stay exact (zero false negatives)
        with respect to the stored corpus.  Refinement always runs in
        float64 (the DTW kernels upcast).
        """
        from ..ingest.builder import transform_from_config

        manifest = store.manifest
        if manifest.kind != "melody":
            raise ValueError(
                f"store kind {manifest.kind!r} is not a melody store "
                f"(use SubsequenceIndex.from_store)"
            )
        self = cls.__new__(cls)
        self.obs = OBS_DISABLED if obs is None else obs
        if index_kind not in _INDEX_KINDS:
            raise ValueError(
                f"index_kind must be one of {_INDEX_KINDS}, got {index_kind!r}"
            )
        backend = DEFAULT_BACKEND if dtw_backend is None else dtw_backend
        get_kernel(backend)
        self.dtw_backend = backend
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        if shards is not None and shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.shards = shards
        self.mutations = 0
        cfg = manifest.config
        nf = cfg.get("normal_form", {})
        self.normal_form = NormalForm(
            length=nf.get("length", manifest.normal_length),
            shift=nf.get("shift", True),
            scale=nf.get("scale", False),
        )
        self.normal_length = manifest.normal_length
        self.delta = float(cfg.get("delta", 0.1))
        self.metric = manifest.metric
        self.band = warping_width_to_k(self.delta, self.normal_length)
        spec = cfg.get("env_transform")
        self.env_transform = (
            transform_from_config(spec, metric=self.metric) if spec
            else NewPAAEnvelopeTransform(self.normal_length,
                                         manifest.n_features,
                                         metric=self.metric)
        )
        if self.env_transform.input_length != self.normal_length:
            raise ValueError(
                "store's envelope transform does not match its normal form"
            )
        self.index_kind = index_kind
        self._capacity = (int(cfg.get("capacity", 50)) if capacity is None
                          else capacity)
        self._engines = {}
        for name, value in self._store_state(store).items():
            setattr(self, name, value)
        return self

    @property
    def store(self):
        """The backing :class:`~repro.store.CorpusStore` (or ``None``)."""
        return self._store

    @staticmethod
    def _slack_for(margin: float, dim: int, metric: str) -> float:
        """Range-search inflation covering float32 feature storage.

        Each stored feature coordinate is within *margin* of the exact
        float64 feature, so a rectangle distance computed from stored
        features can exceed the true one by at most ``margin * sqrt(d)``
        (Euclidean) / ``margin * d`` (Manhattan).
        """
        if margin <= 0.0:
            return 0.0
        return margin * (dim if metric == "manhattan" else math.sqrt(dim))

    def _store_state(self, store) -> dict:
        """Build every corpus-dependent object for a generation.

        Pure construction — nothing on ``self`` is touched, so
        :meth:`swap_generation` can assemble the new generation's state
        while queries keep running against the old one.
        """
        manifest = store.manifest
        if (manifest.kind != "melody"
                or manifest.normal_length != self.normal_length
                or manifest.n_features != self.env_transform.output_dim
                or manifest.metric != self.metric):
            raise ValueError(
                f"generation {store.generation} is schema-incompatible "
                f"with this index (kind={manifest.kind!r}, "
                f"n={manifest.normal_length}, d={manifest.n_features}, "
                f"metric={manifest.metric!r})"
            )
        ids = store.ids
        id_to_row = {item_id: row for row, item_id in enumerate(ids)}
        if len(id_to_row) != len(ids):
            raise ValueError("store ids must be unique")
        data = store.normalized
        features = store.features
        if self.index_kind == "rstar":
            index = RStarTree.bulk_load(features, ids,
                                        capacity=self._capacity)
        elif self.index_kind == "grid":
            index = GridFile(features, ids)
        elif self.index_kind == "cluster":
            index = ClusterIndex(features, ids)
        else:
            index = LinearScan(features, ids, capacity=self._capacity)
        margin = store.feature_margin
        return {
            "ids": ids,
            "_id_to_row": id_to_row,
            "_data": data,
            "_features": features,
            "_index": index,
            "_store": store,
            "generation": store.generation,
            "_feature_margin": margin,
            "_lb_slack": self._slack_for(margin,
                                         self.env_transform.output_dim,
                                         self.metric),
        }

    def swap_generation(self, store) -> None:
        """Atomically swap in a new store generation (zero downtime).

        Everything corpus-dependent — arrays, id maps, the bulk-loaded
        feature index — is built *first* from the new generation while
        queries keep reading the old references; then the references
        are rebound (plain attribute stores, atomic under the GIL) and
        ``mutations`` is bumped **exactly once, last**, so versioned
        result caches and the sharded tier's ``(mutations, epoch)``
        key invalidate exactly once per swap.  In-flight queries that
        captured the old arrays finish correctly against the old
        generation.
        """
        if self._store is None:
            raise ValueError(
                "swap_generation requires a store-backed index "
                "(build it with WarpingIndex.from_store)"
            )
        state = self._store_state(store)
        state["_engines"] = {}
        for name, value in state.items():
            setattr(self, name, value)
        self.mutations += 1

    def __len__(self) -> int:
        return self._data.shape[0]

    @property
    def feature_dim(self) -> int:
        return self.env_transform.output_dim

    def normalized(self, item_id) -> np.ndarray:
        """The stored normal form of a database series (float64 view)."""
        return np.asarray(self._data[self._id_to_row[item_id]],
                          dtype=np.float64)

    def insert(self, series, item_id) -> None:
        """Add one series to the index (dynamic maintenance).

        The R*-tree backend uses the R* insertion algorithm (forced
        reinsertion and all); grid file and linear scan append.
        """
        if item_id in self._id_to_row:
            raise ValueError(f"id {item_id!r} already present")
        normal = self.normal_form.apply(series)
        if self._data.dtype == np.float32:
            # Store-backed corpus: quantize first, then feature-extract
            # from the quantized row (same pipeline as the streaming
            # builder) so the stored margin keeps covering every row.
            normal = normal.astype(np.float32)
            exact = self.env_transform.transform.transform(
                np.asarray(normal, dtype=np.float64)
            )
            features = exact.astype(np.float32)
            self._feature_margin = max(
                self._feature_margin,
                float(np.abs(exact - features).max()),
            )
            self._lb_slack = self._slack_for(
                self._feature_margin, self.feature_dim, self.metric
            )
        else:
            features = self.env_transform.transform.transform(normal)
        self._index.insert(features, item_id)
        self._id_to_row[item_id] = self._data.shape[0]
        self._data = np.vstack([self._data, normal])
        self._features = np.vstack([self._features, features])
        self.ids.append(item_id)
        self._engines.clear()
        self.mutations += 1

    def remove(self, item_id) -> None:
        """Remove one series from the index.

        Raises ``KeyError`` for unknown ids.
        """
        if item_id not in self._id_to_row:
            raise KeyError(f"id {item_id!r} not in the index")
        row = self._id_to_row[item_id]
        removed = self._index.delete(self._features[row], item_id)
        if not removed:  # pragma: no cover - indexes stay in sync
            raise RuntimeError(f"index backend lost id {item_id!r}")
        self._data = np.delete(self._data, row, axis=0)
        self._features = np.delete(self._features, row, axis=0)
        self.ids.pop(row)
        self._id_to_row = {iid: r for r, iid in enumerate(self.ids)}
        self._engines.clear()
        self.mutations += 1

    def _query_rectangle(
        self, query
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, Envelope]:
        q = self.normal_form.apply(query)
        envelope = k_envelope(q, self.band)
        feature_env = self.env_transform.reduce(envelope)
        return q, feature_env.lower, feature_env.upper, envelope

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def filter_query(self, query, epsilon: float) -> tuple[list, QueryStats]:
        """The filter step alone: candidate ids and their index cost.

        This is what Figures 8-10 of the paper measure — the number of
        candidates the index retrieves and the pages it touches —
        without the exact-DTW refinement.  The candidate set is a
        superset of the true ε-range answer (Theorem 1).
        """
        if epsilon < 0:
            raise ValueError(f"epsilon must be >= 0, got {epsilon}")
        _, rect_lower, rect_upper, _ = self._query_rectangle(query)
        self._index.reset_stats()
        candidates = self._index.range_search(
            rect_lower, rect_upper, epsilon + self._lb_slack,
            metric=self.metric
        )
        stats = QueryStats(
            candidates=len(candidates), page_accesses=self._index.page_accesses
        )
        return candidates, stats

    def range_query(
        self, query, epsilon: float, *, second_filter: bool = True
    ) -> tuple[list[tuple[object, float]], QueryStats]:
        """All series with DTW distance at most *epsilon* from *query*.

        Returns ``(results, stats)`` where results are ``(id, distance)``
        pairs sorted by distance.  Theorem 1 guarantees the candidate
        set contains every true answer, so the result is exact.

        With *second_filter* (default, as in the paper's Section 5.2),
        candidates are first screened with the full-dimension envelope
        bound LB_Keogh — an O(n) check that is still sound (Lemma 2) —
        and only survivors pay the O(kn) exact DTW; the stats record
        the pruned count under ``extra["second_filter_pruned"]``.
        """
        if epsilon < 0:
            raise ValueError(f"epsilon must be >= 0, got {epsilon}")
        started = monotonic_s()
        q, rect_lower, rect_upper, q_envelope = self._query_rectangle(query)
        self._index.reset_stats()
        candidates = self._index.range_search(
            rect_lower, rect_upper, epsilon + self._lb_slack,
            metric=self.metric
        )
        stats = QueryStats(
            candidates=len(candidates), page_accesses=self._index.page_accesses
        )
        results = []
        if candidates:
            rows = [self._id_to_row[item_id] for item_id in candidates]
            survivors = candidates
            if second_filter:
                # Second filter (paper §5.2): the unreduced envelope
                # bound, vectorised over the candidate matrix.
                data = self._data[rows]
                above = np.maximum(data - q_envelope.upper, 0.0)
                below = np.maximum(q_envelope.lower - data, 0.0)
                if self.metric == "manhattan":
                    lb = np.sum(above + below, axis=1)
                else:
                    lb = np.sqrt(np.sum(above * above + below * below, axis=1))
                keep = lb <= epsilon
                stats.extra["second_filter_pruned"] = int(np.sum(~keep))
                survivors = [c for c, flag in zip(candidates, keep) if flag]
                rows = [r for r, flag in zip(rows, keep) if flag]
            if survivors:
                dists = ldtw_distance_batch(q, self._data[rows], self.band,
                                            metric=self.metric,
                                            upper_bound=epsilon,
                                            backend=self.dtw_backend)
                stats.dtw_computations = len(survivors)
                results = [
                    (item_id, float(dist))
                    for item_id, dist in zip(survivors, dists)
                    if dist <= epsilon
                ]
        results.sort(key=lambda pair: pair[1])
        stats.results = len(results)
        self.obs.record_index_query("range", stats, monotonic_s() - started)
        return results, stats

    def knn_query(
        self, query, k: int
    ) -> tuple[list[tuple[object, float]], QueryStats]:
        """The *k* nearest series under the constrained DTW distance.

        Optimal multi-step k-NN (Seidl & Kriegel 1998): candidates are
        ranked by their feature-space lower bound and refined until the
        next lower bound exceeds the current k-th exact distance — at
        which point no unexamined series can enter the answer.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        started = monotonic_s()
        q, rect_lower, rect_upper, q_envelope = self._query_rectangle(query)
        self._index.reset_stats()
        stats = QueryStats()
        best: list[tuple[float, object]] = []  # max-heap via negated dist
        refine = ldtw_refiner(q, self.band, metric=self.metric,
                              backend=self.dtw_backend)
        import heapq

        for lower_bound, item_id in self._index.nearest(
            rect_lower, rect_upper, metric=self.metric
        ):
            # _lb_slack deflates bounds computed from float32-stored
            # features so the Seidl-Kriegel cutoff stays sound.
            if len(best) == k and lower_bound - self._lb_slack > -best[0][0]:
                break
            stats.candidates += 1
            row = self._id_to_row[item_id]
            cutoff = -best[0][0] if len(best) == k else None
            if cutoff is not None:
                # Second filter (paper §5.2): O(n) full-dimension
                # envelope bound before the O(kn) exact DTW.
                lb_full = envelope_distance(self._data[row], q_envelope,
                                            metric=self.metric)
                if lb_full > cutoff:
                    stats.extra["second_filter_pruned"] = (
                        stats.extra.get("second_filter_pruned", 0) + 1
                    )
                    continue
            dist = refine(self._data[row], cutoff)
            stats.dtw_computations += 1
            if not math.isfinite(dist):
                continue
            if len(best) < k:
                heapq.heappush(best, (-dist, item_id))
            elif dist < -best[0][0]:
                heapq.heapreplace(best, (-dist, item_id))
        stats.page_accesses = self._index.page_accesses
        results = sorted(((item, -negd) for negd, item in best), key=lambda p: p[1])
        stats.results = len(results)
        self.obs.record_index_query("knn", stats, monotonic_s() - started)
        return [(item, dist) for item, dist in results], stats

    def set_observability(self, obs: Observability | None) -> None:
        """Attach (or detach, with ``None``) an observability facade.

        Takes effect immediately for the index query paths *and* every
        already-cached cascade engine, so a facade can be attached to a
        long-lived index without rebuilding anything.
        """
        self.obs = OBS_DISABLED if obs is None else obs
        for engine in self._engines.values():
            engine.obs = self.obs

    def engine(self, *, stages=None, dtw_backend=None):
        """The batched filter-cascade engine over this index's corpus.

        Lazily built (and cached per stage configuration and DTW
        backend) from the stored normal forms; ``insert``/``remove``
        invalidate the cache.  The engine is the vectorised hot path:
        it evaluates the whole corpus through cheap-to-tight
        lower-bound stages before any exact DTW, and reports per-stage
        pruning counters.
        """
        from ..engine import DEFAULT_STAGES, QueryEngine

        backend = self.dtw_backend if dtw_backend is None else dtw_backend
        key = (DEFAULT_STAGES if stages is None else tuple(stages), backend)
        if key not in self._engines:
            self._engines[key] = QueryEngine(
                self._data,
                band=self.band,
                stages=key[0],
                n_features=self.feature_dim,
                ids=list(self.ids),
                metric=self.metric,
                dtw_backend=backend,
                workers=self.workers,
                obs=self.obs,
            )
        return self._engines[key]

    def cascade_range_query(self, query, epsilon: float, *, stages=None,
                            dtw_backend=None):
        """Exact ε-range query through the filter cascade.

        Same answer as :meth:`range_query` (both are exact), but
        evaluated with the vectorised engine; returns ``(results,
        CascadeStats)`` with per-stage pruning counters instead of the
        flat :class:`~repro.index.stats.QueryStats`.
        """
        return self.engine(stages=stages, dtw_backend=dtw_backend).range_search(
            self.normal_form.apply(query), epsilon
        )

    def cascade_knn_query(self, query, k: int, *, stages=None,
                          dtw_backend=None):
        """Exact k-NN query through the filter cascade.

        Same answer as :meth:`knn_query`, evaluated with the
        vectorised engine (best-first refinement with early-abandoning
        DTW); returns ``(results, CascadeStats)``.
        """
        return self.engine(stages=stages, dtw_backend=dtw_backend).knn(
            self.normal_form.apply(query), k
        )

    def cascade_range_query_many(self, queries, epsilon: float, *,
                                 stages=None, dtw_backend=None,
                                 workers=None):
        """A batch of ε-range queries served in parallel by the engine.

        Shards the queries across a thread pool sharing this index's
        corpus matrices (see
        :meth:`repro.engine.QueryEngine.range_search_many`); returns
        ``(per_query_results, merged CascadeStats)`` in query order,
        identical to sequential :meth:`cascade_range_query` calls.
        """
        engine = self.engine(stages=stages, dtw_backend=dtw_backend)
        normalised = [self.normal_form.apply(query) for query in queries]
        return engine.range_search_many(normalised, epsilon, workers=workers)

    def cascade_knn_query_many(self, queries, k: int, *, stages=None,
                               dtw_backend=None, workers=None):
        """A batch of k-NN queries served in parallel by the engine."""
        engine = self.engine(stages=stages, dtw_backend=dtw_backend)
        normalised = [self.normal_form.apply(query) for query in queries]
        return engine.knn_many(normalised, k, workers=workers)

    def range_query_many(
        self, queries, epsilon: float, *, second_filter: bool = True
    ) -> tuple[list[list[tuple[object, float]]], QueryStats]:
        """Run a batch of range queries; stats are aggregated.

        Returns ``(per_query_results, total_stats)`` — the workload
        form every benchmark uses, packaged as API.
        """
        all_results = []
        total = QueryStats()
        for query in queries:
            results, stats = self.range_query(
                query, epsilon, second_filter=second_filter
            )
            all_results.append(results)
            total = total + stats
        return all_results, total

    def knn_query_many(
        self, queries, k: int
    ) -> tuple[list[list[tuple[object, float]]], QueryStats]:
        """Run a batch of k-NN queries; stats are aggregated."""
        all_results = []
        total = QueryStats()
        for query in queries:
            results, stats = self.knn_query(query, k)
            all_results.append(results)
            total = total + stats
        return all_results, total

    def explain(self, query, item_id) -> dict:
        """The full bound cascade for one query/candidate pair.

        Returns a dict with every quantity the filter pipeline would
        compute — useful to see *why* a candidate was pruned or kept:

        ``feature_lb``   distance in reduced feature space (Theorem 1)
        ``envelope_lb``  full-dimension envelope bound (Lemma 2)
        ``exact_dtw``    the true constrained DTW distance
        ``band`` / ``delta`` / ``metric``  the query configuration

        The cascade property ``feature_lb <= envelope_lb <= exact_dtw``
        always holds.
        """
        if item_id not in self._id_to_row:
            raise KeyError(f"id {item_id!r} not in the index")
        q, rect_lower, rect_upper, q_envelope = self._query_rectangle(query)
        row = self._id_to_row[item_id]
        feats = self._features[row]
        gap = np.maximum(rect_lower - feats, 0.0) + np.maximum(
            feats - rect_upper, 0.0
        )
        if self.metric == "manhattan":
            feature_lb = float(np.sum(gap))
        else:
            feature_lb = float(np.sqrt(np.dot(gap, gap)))
        envelope_lb = envelope_distance(self._data[row], q_envelope,
                                        metric=self.metric)
        exact = ldtw_distance(q, self._data[row], self.band,
                              metric=self.metric, backend=self.dtw_backend)
        return {
            "item_id": item_id,
            "feature_lb": feature_lb,
            "envelope_lb": envelope_lb,
            "exact_dtw": exact,
            "band": self.band,
            "delta": self.delta,
            "metric": self.metric,
        }

    def ground_truth_range(self, query, epsilon: float) -> list[tuple[object, float]]:
        """Exact answer by scanning every series (test oracle)."""
        q = self.normal_form.apply(query)
        dists = ldtw_distance_batch(q, self._data, self.band,
                                    metric=self.metric,
                                    backend=self.dtw_backend)
        results = [
            (item_id, float(dist))
            for item_id, dist in zip(self.ids, dists)
            if dist <= epsilon
        ]
        results.sort(key=lambda pair: pair[1])
        return results

    def ground_truth_knn(self, query, k: int) -> list[tuple[object, float]]:
        """Exact k-NN by scanning every series (test oracle)."""
        q = self.normal_form.apply(query)
        dists = ldtw_distance_batch(q, self._data, self.band,
                                    metric=self.metric,
                                    backend=self.dtw_backend)
        ranked = sorted(zip(self.ids, map(float, dists)), key=lambda p: p[1])
        return ranked[:k]
