"""Linear scan: the no-index baseline and ground-truth oracle.

Implements the same query interface as the real indexes so the GEMINI
layer and the benchmarks can swap it in.  A full scan reads every
"page" of ``capacity`` points, which is what its page-access counter
reports — the cost an index must beat.
"""

from __future__ import annotations

import math
from typing import Iterator

import numpy as np

__all__ = ["LinearScan"]


class LinearScan:
    """Brute-force index over points.

    Parameters
    ----------
    points:
        Array of shape ``(m, dim)``.
    ids:
        Optional identifiers, default ``range(m)``.
    capacity:
        Points per notional page, used only for page-access accounting.

    Both queries account their cost **eagerly at call time** — a full
    scan touches every page and every point the moment the query is
    issued — so ``reset_stats()`` has a consistent meaning: counters
    reflect exactly the queries issued since the last reset, never a
    query issued earlier whose results were consumed later.
    """

    def __init__(self, points, ids=None, *, capacity: int = 50) -> None:
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2:
            raise ValueError(f"points must be 2-D, got shape {pts.shape}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        m = pts.shape[0]
        if ids is None:
            ids = range(m)
        ids = list(ids)
        if len(ids) != m:
            raise ValueError(f"{m} points but {len(ids)} ids")
        self.dim = pts.shape[1]
        self.capacity = capacity
        self.page_accesses = 0
        self.points_scanned = 0
        self._points = pts.copy()
        self._ids = ids

    def __len__(self) -> int:
        return self._points.shape[0]

    def insert(self, point, item_id) -> None:
        """Append one point to the scan set."""
        pt = np.asarray(point, dtype=np.float64)
        if pt.shape != (self.dim,):
            raise ValueError(f"expected a point of shape ({self.dim},)")
        self._points = np.vstack([self._points, pt])
        self._ids.append(item_id)

    def delete(self, point, item_id) -> bool:
        """Remove one (point, id) entry; returns False if absent."""
        pt = np.asarray(point, dtype=np.float64)
        if pt.shape != (self.dim,):
            raise ValueError(f"expected a point of shape ({self.dim},)")
        for pos, stored_id in enumerate(self._ids):
            if stored_id == item_id and np.array_equal(self._points[pos], pt):
                self._points = np.delete(self._points, pos, axis=0)
                self._ids.pop(pos)
                return True
        return False

    def reset_stats(self) -> None:
        """Zero every cost counter (pages and points scanned)."""
        self.page_accesses = 0
        self.points_scanned = 0

    def _account_scan(self) -> None:
        """Record the cost of one full scan (called when a query is issued)."""
        self.page_accesses += math.ceil(len(self) / self.capacity)
        self.points_scanned += len(self)

    def _rect_distances(self, rect_lower, rect_upper,
                        metric: str) -> np.ndarray:
        """Per-point rectangle distance (true distance, not a cost)."""
        if metric not in ("euclidean", "manhattan"):
            raise ValueError(
                f"metric must be 'euclidean' or 'manhattan', got {metric!r}"
            )
        q_lower = np.asarray(rect_lower, dtype=np.float64)
        q_upper = np.asarray(rect_upper, dtype=np.float64)
        if q_lower.shape != (self.dim,) or q_upper.shape != (self.dim,):
            raise ValueError(f"query rectangle must have shape ({self.dim},)")
        if np.any(q_lower > q_upper):
            raise ValueError("query rectangle has lower > upper")
        gap = np.maximum(q_lower - self._points, 0.0) + np.maximum(
            self._points - q_upper, 0.0
        )
        if metric == "manhattan":
            return np.sum(gap, axis=1)
        return np.sqrt(np.sum(gap * gap, axis=1))

    def range_search(self, rect_lower, rect_upper, radius: float, *,
                     metric: str = "euclidean") -> list:
        """All ids within *radius* of the query rectangle (full scan)."""
        if radius < 0:
            raise ValueError(f"radius must be >= 0, got {radius}")
        self._account_scan()
        dist = self._rect_distances(rect_lower, rect_upper, metric)
        hits = np.nonzero(dist <= radius)[0]
        return [self._ids[i] for i in hits]

    def nearest(self, rect_lower, rect_upper, *,
                metric: str = "euclidean") -> Iterator[tuple[float, object]]:
        """Return ``(distance, id)`` pairs in increasing rectangle distance.

        The scan (and its cost accounting) happens here, not lazily at
        first iteration — previously a generator deferred the counter
        update, so a ``reset_stats()`` issued between creating and
        consuming the iterator silently attributed the scan to the
        wrong measurement window.
        """
        self._account_scan()
        dist = self._rect_distances(rect_lower, rect_upper, metric)
        order = np.argsort(dist, kind="stable")
        return iter([(float(dist[i]), self._ids[i]) for i in order])
