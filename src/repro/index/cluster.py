"""Cluster index: a flat two-level alternative to the R*-tree.

Feature vectors are partitioned by k-means (scipy); each cluster keeps
the bounding box of its members.  A query prunes whole clusters by
box distance and scans the survivors — the inverted-file layout used
by modern vector stores, here with *exact* semantics because pruning
uses bounding geometry rather than probe counts.

Included as a fourth interchangeable backend: it often beats the grid
file in high dimensions (data-adapted partitions) while staying far
simpler than the R*-tree.  Page accesses count scanned clusters plus
one directory read.
"""

from __future__ import annotations

import math
from typing import Iterator

import numpy as np
from scipy.cluster.vq import kmeans2

__all__ = ["ClusterIndex"]


def _check_metric(metric: str) -> bool:
    if metric not in ("euclidean", "manhattan"):
        raise ValueError(
            f"metric must be 'euclidean' or 'manhattan', got {metric!r}"
        )
    return metric == "manhattan"


class ClusterIndex:
    """k-means partitioned point index with exact rectangle queries.

    Parameters
    ----------
    points:
        Array of shape ``(m, dim)``.
    ids:
        Optional identifiers, default ``range(m)``.
    n_clusters:
        Number of partitions; default ``ceil(sqrt(m))`` (balanced
        directory-vs-bucket scan).
    seed:
        k-means initialisation seed (the index is deterministic).
    """

    def __init__(
        self,
        points,
        ids=None,
        *,
        n_clusters: int | None = None,
        seed: int = 0,
    ) -> None:
        pts = np.asarray(points, dtype=np.float64)
        if pts.ndim != 2:
            raise ValueError(f"points must be 2-D, got shape {pts.shape}")
        m, dim = pts.shape
        if ids is None:
            ids = range(m)
        ids = list(ids)
        if len(ids) != m:
            raise ValueError(f"{m} points but {len(ids)} ids")
        self.dim = dim
        self.page_accesses = 0
        self._size = m
        if m == 0:
            self._clusters: list[dict] = []
            return
        if n_clusters is None:
            n_clusters = max(1, math.isqrt(m))
        n_clusters = min(n_clusters, m)
        if n_clusters < 1:
            raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
        if n_clusters == 1:
            labels = np.zeros(m, dtype=np.int64)
        else:
            _, labels = kmeans2(pts, n_clusters, minit="points", seed=seed)
        self._clusters = []
        for label in np.unique(labels):
            member_rows = np.nonzero(labels == label)[0]
            members = pts[member_rows]
            self._clusters.append(
                {
                    "points": members,
                    "ids": [ids[r] for r in member_rows],
                    "lower": members.min(axis=0),
                    "upper": members.max(axis=0),
                }
            )

    def __len__(self) -> int:
        return self._size

    @property
    def cluster_count(self) -> int:
        return len(self._clusters)

    def reset_stats(self) -> None:
        """Zero the page-access counter (between measured queries)."""
        self.page_accesses = 0

    def insert(self, point, item_id) -> None:
        """Add one point to its nearest cluster (boxes stretch)."""
        pt = np.asarray(point, dtype=np.float64)
        if pt.shape != (self.dim,):
            raise ValueError(f"expected a point of shape ({self.dim},)")
        if not self._clusters:
            self._clusters.append(
                {"points": pt[None, :].copy(), "ids": [item_id],
                 "lower": pt.copy(), "upper": pt.copy()}
            )
            self._size += 1
            return
        centres = np.array([
            (c["lower"] + c["upper"]) / 2.0 for c in self._clusters
        ])
        nearest = int(np.argmin(np.linalg.norm(centres - pt, axis=1)))
        cluster = self._clusters[nearest]
        cluster["points"] = np.vstack([cluster["points"], pt])
        cluster["ids"].append(item_id)
        np.minimum(cluster["lower"], pt, out=cluster["lower"])
        np.maximum(cluster["upper"], pt, out=cluster["upper"])
        self._size += 1

    def delete(self, point, item_id) -> bool:
        """Remove one (point, id) entry; returns False if absent."""
        pt = np.asarray(point, dtype=np.float64)
        if pt.shape != (self.dim,):
            raise ValueError(f"expected a point of shape ({self.dim},)")
        for cluster in self._clusters:
            for pos, stored_id in enumerate(cluster["ids"]):
                if stored_id == item_id and np.array_equal(
                    cluster["points"][pos], pt
                ):
                    cluster["points"] = np.delete(cluster["points"], pos,
                                                  axis=0)
                    cluster["ids"].pop(pos)
                    self._size -= 1
                    if not cluster["ids"]:
                        self._clusters.remove(cluster)
                    # Boxes stay conservative (sound, just looser).
                    return True
        return False

    def _gaps(self, arr, q_lower, q_upper):
        return np.maximum(q_lower - arr, 0.0) + np.maximum(arr - q_upper, 0.0)

    def _check_rect(self, rect_lower, rect_upper):
        q_lower = np.asarray(rect_lower, dtype=np.float64)
        q_upper = np.asarray(rect_upper, dtype=np.float64)
        if q_lower.shape != (self.dim,) or q_upper.shape != (self.dim,):
            raise ValueError(f"query rectangle must have shape ({self.dim},)")
        if np.any(q_lower > q_upper):
            raise ValueError("query rectangle has lower > upper")
        return q_lower, q_upper

    def range_search(self, rect_lower, rect_upper, radius: float, *,
                     metric: str = "euclidean") -> list:
        """All ids within *radius* of the query rectangle (exact)."""
        manhattan = _check_metric(metric)
        q_lower, q_upper = self._check_rect(rect_lower, rect_upper)
        if radius < 0:
            raise ValueError(f"radius must be >= 0, got {radius}")
        self.page_accesses += 1  # the cluster directory
        results = []
        for cluster in self._clusters:
            gap = np.maximum(q_lower - cluster["upper"], 0.0) + np.maximum(
                cluster["lower"] - q_upper, 0.0
            )
            box_dist = float(np.sum(gap)) if manhattan else float(
                np.sqrt(gap @ gap)
            )
            if box_dist > radius:
                continue
            self.page_accesses += 1
            gaps = self._gaps(cluster["points"], q_lower, q_upper)
            if manhattan:
                dist = np.sum(gaps, axis=1)
            else:
                dist = np.sqrt(np.sum(gaps * gaps, axis=1))
            for pos in np.nonzero(dist <= radius)[0]:
                results.append(cluster["ids"][pos])
        return results

    def nearest(self, rect_lower, rect_upper, *,
                metric: str = "euclidean") -> Iterator[tuple[float, object]]:
        """Yield ``(distance, id)`` by increasing rectangle distance.

        Clusters are visited in box-distance order; points already
        scanned are emitted once they are provably closer than every
        unvisited cluster.
        """
        import heapq

        manhattan = _check_metric(metric)
        q_lower, q_upper = self._check_rect(rect_lower, rect_upper)
        self.page_accesses += 1
        ranked = []
        for cluster in self._clusters:
            gap = np.maximum(q_lower - cluster["upper"], 0.0) + np.maximum(
                cluster["lower"] - q_upper, 0.0
            )
            box_dist = float(np.sum(gap)) if manhattan else float(
                np.sqrt(gap @ gap)
            )
            ranked.append((box_dist, id(cluster), cluster))
        ranked.sort(key=lambda t: t[:2])

        pending: list[tuple[float, int, object]] = []
        counter = 0
        for box_dist, _, cluster in ranked:
            while pending and pending[0][0] <= box_dist:
                dist, _, item_id = heapq.heappop(pending)
                yield dist, item_id
            self.page_accesses += 1
            gaps = self._gaps(cluster["points"], q_lower, q_upper)
            if manhattan:
                dists = np.sum(gaps, axis=1)
            else:
                dists = np.sqrt(np.sum(gaps * gaps, axis=1))
            for pos, dist in enumerate(dists):
                heapq.heappush(pending, (float(dist), counter,
                                         cluster["ids"][pos]))
                counter += 1
        while pending:
            dist, _, item_id = heapq.heappop(pending)
            yield dist, item_id
