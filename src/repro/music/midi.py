"""Minimal Standard MIDI File reader/writer.

The paper builds its large music database by extracting notes from "the
melody channel of MIDI files collected from the Internet".  This module
is the substrate for that step: enough of SMF (format 0 and 1) to
round-trip monophonic melodies — header and track chunks, variable
length quantities, running status, note on/off, and the set-tempo meta
event.  Anything else in the file is skipped structurally.
"""

from __future__ import annotations

import io
import struct
from dataclasses import dataclass, field

from .melody import Melody

__all__ = ["MidiFile", "MidiNoteEvent", "melody_to_midi_bytes", "melodies_from_midi_bytes"]

_DEFAULT_DIVISION = 480  # ticks per quarter note


@dataclass
class MidiNoteEvent:
    """One decoded note: channel, pitch, start/end in ticks."""

    channel: int
    pitch: int
    velocity: int
    start_tick: int
    end_tick: int

    @property
    def duration_ticks(self) -> int:
        return self.end_tick - self.start_tick


def _write_vlq(value: int) -> bytes:
    """Encode a MIDI variable-length quantity."""
    if value < 0:
        raise ValueError(f"VLQ values must be >= 0, got {value}")
    chunks = [value & 0x7F]
    value >>= 7
    while value:
        chunks.append(0x80 | (value & 0x7F))
        value >>= 7
    return bytes(reversed(chunks))


def _read_exact(stream: io.BytesIO, count: int) -> bytes:
    """Read exactly *count* bytes or raise ``ValueError``."""
    data = stream.read(count)
    if len(data) != count:
        raise ValueError(
            f"truncated MIDI data: wanted {count} bytes, got {len(data)}"
        )
    return data


def _read_vlq(stream: io.BytesIO) -> int:
    """Decode a MIDI variable-length quantity."""
    value = 0
    for _ in range(4):
        byte = stream.read(1)
        if not byte:
            raise ValueError("truncated variable-length quantity")
        b = byte[0]
        value = (value << 7) | (b & 0x7F)
        if not b & 0x80:
            return value
    raise ValueError("variable-length quantity longer than 4 bytes")


@dataclass
class MidiFile:
    """A decoded MIDI file reduced to note events.

    Attributes
    ----------
    division:
        Ticks per quarter note.
    notes:
        All note events across all tracks, ordered by start tick.
    tempo_us_per_beat:
        Microseconds per quarter note (first set-tempo event, default
        500000 = 120 BPM).
    """

    division: int = _DEFAULT_DIVISION
    notes: list[MidiNoteEvent] = field(default_factory=list)
    tempo_us_per_beat: int = 500000

    # ------------------------------------------------------------------
    # encoding
    # ------------------------------------------------------------------

    @classmethod
    def from_melody(
        cls,
        melody: Melody,
        *,
        channel: int = 0,
        division: int = _DEFAULT_DIVISION,
        velocity: int = 90,
    ) -> "MidiFile":
        """Encode a melody as back-to-back notes on one channel."""
        if not 0 <= channel < 16:
            raise ValueError(f"channel must be in [0, 16), got {channel}")
        midi = cls(division=division)
        tick = 0
        for note in melody:
            length = max(1, int(round(note.duration * division)))
            midi.notes.append(
                MidiNoteEvent(
                    channel=channel,
                    pitch=int(round(note.pitch)),
                    velocity=velocity,
                    start_tick=tick,
                    end_tick=tick + length,
                )
            )
            tick += length
        return midi

    def to_bytes(self) -> bytes:
        """Serialise as a format-0 SMF."""
        events: list[tuple[int, bytes]] = [
            (0, bytes([0xFF, 0x51, 0x03]) + self.tempo_us_per_beat.to_bytes(3, "big"))
        ]
        for note in sorted(self.notes, key=lambda n: (n.start_tick, n.pitch)):
            on = bytes([0x90 | note.channel, note.pitch, note.velocity])
            off = bytes([0x80 | note.channel, note.pitch, 0])
            events.append((note.start_tick, on))
            events.append((note.end_tick, off))
        events.sort(key=lambda pair: pair[0])
        track = bytearray()
        prev_tick = 0
        for tick, payload in events:
            track += _write_vlq(tick - prev_tick)
            track += payload
            prev_tick = tick
        track += _write_vlq(0) + bytes([0xFF, 0x2F, 0x00])  # end of track
        header = struct.pack(">4sIHHH", b"MThd", 6, 0, 1, self.division)
        return header + struct.pack(">4sI", b"MTrk", len(track)) + bytes(track)

    # ------------------------------------------------------------------
    # decoding
    # ------------------------------------------------------------------

    @classmethod
    def from_bytes(cls, data: bytes) -> "MidiFile":
        """Parse an SMF byte string (formats 0 and 1)."""
        stream = io.BytesIO(data)
        magic, length = struct.unpack(">4sI", _read_exact(stream, 8))
        if magic != b"MThd" or length < 6:
            raise ValueError("not a MIDI file (missing MThd header)")
        fmt, n_tracks, division = struct.unpack(">HHH", _read_exact(stream, 6))
        stream.read(length - 6)
        if fmt not in (0, 1):
            raise ValueError(f"unsupported MIDI format {fmt}")
        if division & 0x8000:
            raise ValueError("SMPTE time division is not supported")
        midi = cls(division=division)
        for _ in range(n_tracks):
            midi._parse_track(stream)
        midi.notes.sort(key=lambda n: (n.start_tick, n.channel, n.pitch))
        return midi

    def _parse_track(self, stream: io.BytesIO) -> None:
        header = stream.read(8)
        if len(header) < 8:
            raise ValueError("truncated track header")
        magic, length = struct.unpack(">4sI", header)
        if magic != b"MTrk":
            raise ValueError(f"expected MTrk chunk, got {magic!r}")
        track = io.BytesIO(stream.read(length))
        tick = 0
        running_status = None
        open_notes: dict[tuple[int, int], tuple[int, int]] = {}
        while True:
            head = track.read(1)
            if not head:
                break
            track.seek(-1, io.SEEK_CUR)
            tick += _read_vlq(track)
            status_byte = _read_exact(track, 1)[0]
            if status_byte < 0x80:
                if running_status is None:
                    raise ValueError("data byte with no running status")
                status = running_status
                track.seek(-1, io.SEEK_CUR)
            else:
                status = status_byte
                if status < 0xF0:
                    running_status = status
            if status == 0xFF:  # meta event
                meta_type = _read_exact(track, 1)[0]
                meta_len = _read_vlq(track)
                payload = _read_exact(track, meta_len)
                if meta_type == 0x51 and meta_len == 3:
                    self.tempo_us_per_beat = int.from_bytes(payload, "big")
                if meta_type == 0x2F:
                    break
                continue
            if status in (0xF0, 0xF7):  # sysex
                _read_exact(track, _read_vlq(track))
                continue
            kind = status & 0xF0
            channel = status & 0x0F
            if kind in (0x80, 0x90, 0xA0, 0xB0, 0xE0):
                data1 = _read_exact(track, 1)[0]
                data2 = _read_exact(track, 1)[0]
            elif kind in (0xC0, 0xD0):
                _read_exact(track, 1)
                continue
            else:
                raise ValueError(f"unexpected status byte 0x{status:02x}")
            if kind == 0x90 and data2 > 0:
                open_notes[(channel, data1)] = (tick, data2)
            elif kind == 0x80 or (kind == 0x90 and data2 == 0):
                started = open_notes.pop((channel, data1), None)
                if started is not None:
                    start_tick, velocity = started
                    self.notes.append(
                        MidiNoteEvent(
                            channel=channel,
                            pitch=data1,
                            velocity=velocity,
                            start_tick=start_tick,
                            end_tick=tick,
                        )
                    )

    # ------------------------------------------------------------------
    # melody extraction
    # ------------------------------------------------------------------

    def channels(self) -> list[int]:
        """Channels carrying notes, ordered by note count (desc)."""
        counts: dict[int, int] = {}
        for note in self.notes:
            counts[note.channel] = counts.get(note.channel, 0) + 1
        return sorted(counts, key=lambda ch: -counts[ch])

    def melody_channel(self) -> int:
        """Heuristic melody channel: the one with the most notes."""
        chans = self.channels()
        if not chans:
            raise ValueError("MIDI file contains no notes")
        return chans[0]

    def to_melody(self, channel: int | None = None, *, name: str = "") -> Melody:
        """Extract the monophonic melody of *channel*.

        Overlapping notes are flattened by keeping, at any moment, the
        most recently started note; zero-length remnants are dropped.
        """
        if channel is None:
            channel = self.melody_channel()
        events = [n for n in self.notes if n.channel == channel]
        if not events:
            raise ValueError(f"channel {channel} has no notes")
        events.sort(key=lambda n: n.start_tick)
        notes = []
        for i, event in enumerate(events):
            end = event.end_tick
            if i + 1 < len(events):
                end = min(end, events[i + 1].start_tick)
            duration = (end - event.start_tick) / self.division
            if duration > 0:
                notes.append((float(event.pitch), duration))
        if not notes:
            raise ValueError(f"channel {channel} flattens to an empty melody")
        return Melody(notes, name=name)


def melody_to_midi_bytes(melody: Melody, **kwargs) -> bytes:
    """Convenience: encode a melody straight to SMF bytes."""
    return MidiFile.from_melody(melody, **kwargs).to_bytes()


def melodies_from_midi_bytes(data: bytes) -> list[Melody]:
    """Convenience: one melody per note-bearing channel of the file."""
    midi = MidiFile.from_bytes(data)
    return [midi.to_melody(ch) for ch in midi.channels()]
