"""ABC-notation export: make melodies human-readable and shareable.

ABC is the plain-text folk-notation standard — any ABC renderer turns
the output into sheet music, so a query result or a generated corpus
can be *seen* (and played) outside this library.  Only the subset a
monophonic melody needs is produced: header fields, note letters with
octave marks, accidentals as sharps, and duration multipliers relative
to the unit note length.
"""

from __future__ import annotations

from fractions import Fraction

from .melody import Melody

__all__ = ["melody_to_abc"]

#: Pitch-class spelling with sharps (ABC uses ^ for sharp).
_ABC_CLASSES = ("C", "^C", "D", "^D", "E", "F", "^F", "G", "^G", "A", "^A", "B")


def _abc_pitch(midi_pitch: float) -> str:
    """ABC spelling of a MIDI pitch (rounded to the tempered grid).

    Octave 5 (MIDI 60-71) is upper-case; octave 6 lower-case; further
    octaves add ``'`` (up) or ``,`` (down) marks, per the ABC standard.
    """
    rounded = int(round(midi_pitch))
    pitch_class = _ABC_CLASSES[rounded % 12]
    octave = rounded // 12 - 1  # scientific octave number
    if octave <= 4:
        return pitch_class + "," * (4 - octave)
    if octave == 5:
        return pitch_class.lower()
    return pitch_class.lower() + "'" * (octave - 5)


def _abc_duration(duration_beats: float, unit_beats: Fraction) -> str:
    """Duration multiplier string relative to the unit note length."""
    ratio = Fraction(duration_beats).limit_denominator(16) / unit_beats
    if ratio == 1:
        return ""
    if ratio.denominator == 1:
        return str(ratio.numerator)
    if ratio.numerator == 1 and ratio.denominator == 2:
        return "/"
    return f"{ratio.numerator}/{ratio.denominator}"


def melody_to_abc(
    melody: Melody,
    *,
    title: str | None = None,
    reference: int = 1,
    unit_beats: float = 0.5,
    beats_per_bar: int = 4,
    tempo_bpm: int = 100,
) -> str:
    """Render a melody as an ABC tune.

    Parameters
    ----------
    melody:
        The melody (fractional pitches round to the tempered grid).
    title:
        Tune title; defaults to the melody's name.
    reference:
        The ABC ``X:`` reference number.
    unit_beats:
        Beats represented by the unit note length ``L:`` (0.5 beat =
        an eighth note under ``M: 4/4``).
    beats_per_bar:
        Bar length for the ``M:`` field and bar-line placement.
    tempo_bpm:
        Quarter-note tempo for the ``Q:`` field.

    Returns
    -------
    str
        A complete single-voice ABC tune body with headers.
    """
    if unit_beats <= 0 or beats_per_bar < 1 or tempo_bpm < 1:
        raise ValueError("unit_beats, beats_per_bar, tempo_bpm must be positive")
    unit = Fraction(unit_beats).limit_denominator(16)
    header = [
        f"X: {reference}",
        f"T: {title or melody.name or 'untitled'}",
        f"M: {beats_per_bar}/4",
        f"L: {Fraction(unit / 4).limit_denominator(64)}",
        f"Q: 1/4={tempo_bpm}",
        "K: C",
    ]
    tokens: list[str] = []
    beats_in_bar = 0.0
    for note in melody:
        tokens.append(
            _abc_pitch(note.pitch) + _abc_duration(note.duration, unit)
        )
        beats_in_bar += note.duration
        if beats_in_bar >= beats_per_bar - 1e-9:
            tokens.append("|")
            beats_in_bar = 0.0
    if tokens and tokens[-1] != "|":
        tokens.append("|")
    body_lines = []
    line: list[str] = []
    bars = 0
    for token in tokens:
        line.append(token)
        if token == "|":
            bars += 1
            if bars % 4 == 0:
                body_lines.append(" ".join(line))
                line = []
    if line:
        body_lines.append(" ".join(line))
    return "\n".join(header + body_lines) + "\n"
