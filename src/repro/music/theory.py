"""Basic music theory utilities: pitch classes, intervals, key finding.

Supports corpus analysis and examples: a pitch-class histogram over a
melody, Krumhansl–Schmuckler key estimation (correlating the histogram
with the classic major/minor key profiles), and interval naming.
Nothing here is required by the index — melodies are matched as raw
time series, per the paper — but a music database library without a
key finder would feel half-dressed.
"""

from __future__ import annotations

import numpy as np

from .melody import Melody

__all__ = [
    "PITCH_CLASSES",
    "interval_name",
    "pitch_class_histogram",
    "estimate_key",
    "key_name",
]

PITCH_CLASSES = ("C", "C#", "D", "D#", "E", "F", "F#", "G", "G#", "A", "A#", "B")

_INTERVAL_NAMES = (
    "unison", "minor second", "major second", "minor third", "major third",
    "perfect fourth", "tritone", "perfect fifth", "minor sixth",
    "major sixth", "minor seventh", "major seventh",
)

#: Krumhansl-Kessler key profiles (probe-tone ratings).
_MAJOR_PROFILE = np.array(
    [6.35, 2.23, 3.48, 2.33, 4.38, 4.09, 2.52, 5.19, 2.39, 3.66, 2.29, 2.88]
)
_MINOR_PROFILE = np.array(
    [6.33, 2.68, 3.52, 5.38, 2.60, 3.53, 2.54, 4.75, 3.98, 2.69, 3.34, 3.17]
)


def interval_name(semitones: int) -> str:
    """Name of an interval; octaves are annotated.

    >>> interval_name(7)
    'perfect fifth'
    >>> interval_name(-12)
    'octave'
    """
    distance = abs(int(semitones))
    octaves, remainder = divmod(distance, 12)
    if remainder == 0 and octaves > 0:
        return "octave" if octaves == 1 else f"{octaves} octaves"
    name = _INTERVAL_NAMES[remainder]
    if octaves:
        return f"{name} + {octaves} octave{'s' if octaves > 1 else ''}"
    return name


def pitch_class_histogram(melody: Melody, *, weighted: bool = True) -> np.ndarray:
    """Distribution of the melody's pitch classes (sums to 1).

    Parameters
    ----------
    melody:
        Input melody; fractional pitches are rounded to the nearest
        tempered pitch.
    weighted:
        Weight each note by its duration (default) rather than
        counting notes equally.
    """
    histogram = np.zeros(12)
    for note in melody:
        pitch_class = int(round(note.pitch)) % 12
        histogram[pitch_class] += note.duration if weighted else 1.0
    total = histogram.sum()
    if total > 0:
        histogram /= total
    return histogram


def estimate_key(melody: Melody) -> tuple[int, str, float]:
    """Krumhansl–Schmuckler key estimation.

    Correlates the melody's duration-weighted pitch-class histogram
    with the 24 rotated key profiles and returns the winner.

    Returns
    -------
    (tonic, mode, confidence)
        ``tonic`` is a pitch class 0-11 (0 = C), ``mode`` is
        ``"major"`` or ``"minor"``, and ``confidence`` is the winning
        Pearson correlation (1.0 = perfect fit).
    """
    histogram = pitch_class_histogram(melody)
    best = (-2.0, 0, "major")
    for mode, profile in (("major", _MAJOR_PROFILE), ("minor", _MINOR_PROFILE)):
        for tonic in range(12):
            rotated = np.roll(profile, tonic)
            corr = np.corrcoef(histogram, rotated)[0, 1]
            if np.isnan(corr):
                continue
            if corr > best[0]:
                best = (float(corr), tonic, mode)
    confidence, tonic, mode = best
    return tonic, mode, confidence


def key_name(tonic: int, mode: str) -> str:
    """Human-readable key name, e.g. ``key_name(9, "minor") == 'A minor'``."""
    if not 0 <= tonic < 12:
        raise ValueError(f"tonic must be a pitch class 0-11, got {tonic}")
    if mode not in ("major", "minor"):
        raise ValueError(f"mode must be 'major' or 'minor', got {mode!r}")
    return f"{PITCH_CLASSES[tonic]} {mode}"
