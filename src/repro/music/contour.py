"""Melodic contour baseline (Section 2 — the approach the paper beats).

A melody becomes a short string over a small alphabet describing how
each note moves relative to the previous one: the classic (U, D, S)
alphabet, or a finer five-letter variant where lowercase means a small
interval.  Similarity is edit distance; a q-gram count filter speeds up
database search without false dismissals (for bounded edit distance).

The precision of this whole pipeline rests on correct note
segmentation, which is exactly the fragile step the paper avoids — the
Table 2 experiment quantifies the damage.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence

import numpy as np

from .melody import Melody

__all__ = [
    "contour_string",
    "edit_distance",
    "qgram_profile",
    "qgram_count_filter",
    "ContourIndex",
]


def contour_string(
    melody,
    *,
    levels: int = 3,
    small_interval: float = 2.0,
    same_threshold: float = 0.5,
) -> str:
    """Contour string of a melody or of a pitch-per-note sequence.

    Parameters
    ----------
    melody:
        A :class:`Melody` or a sequence of note pitches.
    levels:
        3 for (U, D, S); 5 adds u/d for intervals of at most
        *small_interval* semitones.
    small_interval:
        Boundary between small (u/d) and large (U/D) intervals.
    same_threshold:
        Pitch differences up to this count as "same" (S).
    """
    if levels not in (3, 5):
        raise ValueError(f"levels must be 3 or 5, got {levels}")
    if isinstance(melody, Melody):
        pitches = melody.pitches()
    else:
        pitches = np.asarray(melody, dtype=np.float64)
    if pitches.ndim != 1 or pitches.size < 2:
        raise ValueError("need at least two notes for a contour")
    letters = []
    for prev, curr in zip(pitches, pitches[1:]):
        diff = curr - prev
        if abs(diff) <= same_threshold:
            letters.append("S")
        elif diff > 0:
            if levels == 5 and diff <= small_interval:
                letters.append("u")
            else:
                letters.append("U")
        else:
            if levels == 5 and -diff <= small_interval:
                letters.append("d")
            else:
                letters.append("D")
    return "".join(letters)


def edit_distance(a: str, b: str) -> int:
    """Levenshtein distance between two strings (unit costs)."""
    if len(a) < len(b):
        a, b = b, a
    if not b:
        return len(a)
    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        current = [i]
        for j, cb in enumerate(b, start=1):
            current.append(
                min(
                    previous[j] + 1,        # deletion
                    current[j - 1] + 1,     # insertion
                    previous[j - 1] + (ca != cb),  # substitution
                )
            )
        previous = current
    return previous[-1]


def qgram_profile(s: str, q: int) -> Counter:
    """Multiset of the q-grams of *s* (empty if the string is shorter)."""
    if q < 1:
        raise ValueError(f"q must be >= 1, got {q}")
    return Counter(s[i : i + q] for i in range(len(s) - q + 1))


def qgram_count_filter(
    query_profile: Counter, candidate: str, q: int, max_edits: int,
    query_length: int,
) -> bool:
    """True if *candidate* may be within *max_edits* of the query.

    The count filter (Gravano et al.): one edit destroys at most ``q``
    q-grams, so strings within edit distance ``k`` share at least
    ``max(|x|, |y|) - q + 1 - k*q`` q-grams.  A ``False`` return is a
    guaranteed dismissal; ``True`` requires verification.
    """
    cand_profile = qgram_profile(candidate, q)
    common = sum((query_profile & cand_profile).values())
    required = max(query_length, len(candidate)) - q + 1 - max_edits * q
    return common >= required


class ContourIndex:
    """Edit-distance search over a database of contour strings.

    Parameters
    ----------
    melodies:
        Database melodies (contours are extracted at build time).
    levels:
        Contour alphabet size (3 or 5).
    q:
        q-gram length for the count prefilter.
    """

    def __init__(self, melodies: Sequence[Melody], *, levels: int = 3,
                 q: int = 3) -> None:
        if not melodies:
            raise ValueError("melody database must not be empty")
        self.levels = levels
        self.q = q
        self.names = [m.name or str(i) for i, m in enumerate(melodies)]
        self.contours = [contour_string(m, levels=levels) for m in melodies]

    def __len__(self) -> int:
        return len(self.contours)

    def rank(self, query_contour: str) -> list[tuple[int, int]]:
        """Full ranking: ``(melody_index, edit_distance)`` ascending.

        Ties are broken by database order, mirroring how a real system
        would present equally-scored results.
        """
        scored = [
            (idx, edit_distance(query_contour, contour))
            for idx, contour in enumerate(self.contours)
        ]
        scored.sort(key=lambda pair: (pair[1], pair[0]))
        return scored

    def search(
        self, query_contour: str, max_edits: int
    ) -> tuple[list[tuple[int, int]], int]:
        """All melodies within *max_edits*, using the q-gram prefilter.

        Returns ``(matches, verified)`` where *verified* counts the
        candidates that survived the filter and needed an exact edit
        distance computation.
        """
        profile = qgram_profile(query_contour, self.q)
        matches = []
        verified = 0
        for idx, contour in enumerate(self.contours):
            if not qgram_count_filter(
                profile, contour, self.q, max_edits, len(query_contour)
            ):
                continue
            verified += 1
            dist = edit_distance(query_contour, contour)
            if dist <= max_edits:
                matches.append((idx, dist))
        matches.sort(key=lambda pair: (pair[1], pair[0]))
        return matches, verified

    def rank_of(self, query_contour: str, target_index: int) -> int:
        """1-based rank of *target_index* in the full ranking.

        The rank is "competition style": one plus the number of
        melodies strictly closer than the target (ties do not hurt).
        """
        if not 0 <= target_index < len(self):
            raise ValueError(f"target index {target_index} out of range")
        target_dist = edit_distance(
            query_contour, self.contours[target_index]
        )
        closer = sum(
            1
            for contour in self.contours
            if edit_distance(query_contour, contour) < target_dist
        )
        return closer + 1
