"""Corpus analysis: descriptive statistics over melody collections.

What a librarian runs before indexing a new collection: interval and
duration distributions, pitch ranges, key distribution, and duplicate
detection.  Used by the corpus-report example and handy for sanity-
checking real MIDI collections before they hit the warping index.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from .melody import Melody
from .theory import estimate_key, key_name

__all__ = ["CorpusStats", "analyze_corpus", "find_duplicates"]


@dataclass
class CorpusStats:
    """Descriptive statistics of a melody collection."""

    n_melodies: int = 0
    total_notes: int = 0
    note_counts: list[int] = field(default_factory=list)
    pitch_min: float = 0.0
    pitch_max: float = 0.0
    interval_histogram: Counter = field(default_factory=Counter)
    duration_histogram: Counter = field(default_factory=Counter)
    key_distribution: Counter = field(default_factory=Counter)

    @property
    def mean_notes(self) -> float:
        if not self.note_counts:
            return 0.0
        return float(np.mean(self.note_counts))

    @property
    def pitch_span_semitones(self) -> float:
        return self.pitch_max - self.pitch_min

    def most_common_intervals(self, n: int = 5) -> list[tuple[int, int]]:
        """The *n* most frequent melodic intervals (semitones, count)."""
        return self.interval_histogram.most_common(n)

    def stepwise_fraction(self) -> float:
        """Fraction of intervals that are steps (|interval| <= 2).

        Real (and believable synthetic) melodies are predominantly
        stepwise — a classic melodic-motion statistic.
        """
        total = sum(self.interval_histogram.values())
        if total == 0:
            return 0.0
        steps = sum(
            count for interval, count in self.interval_histogram.items()
            if abs(interval) <= 2
        )
        return steps / total

    def summary(self) -> str:
        """A terse multi-line report."""
        lines = [
            f"melodies: {self.n_melodies}  notes: {self.total_notes} "
            f"(mean {self.mean_notes:.1f}/melody)",
            f"pitch range: {self.pitch_min:.0f}-{self.pitch_max:.0f} MIDI "
            f"({self.pitch_span_semitones:.0f} semitones)",
            f"stepwise motion: {self.stepwise_fraction():.0%}",
        ]
        if self.key_distribution:
            top_key, count = self.key_distribution.most_common(1)[0]
            lines.append(
                f"keys: {len(self.key_distribution)} distinct, most common "
                f"{top_key} ({count})"
            )
        return "\n".join(lines)


def analyze_corpus(
    melodies: Sequence[Melody], *, estimate_keys: bool = True
) -> CorpusStats:
    """Compute :class:`CorpusStats` for a melody collection.

    Parameters
    ----------
    melodies:
        The collection (must be non-empty).
    estimate_keys:
        Run Krumhansl–Schmuckler key estimation per melody (the most
        expensive part; disable for very large corpora).
    """
    if not melodies:
        raise ValueError("corpus must not be empty")
    stats = CorpusStats(n_melodies=len(melodies))
    pitch_min, pitch_max = np.inf, -np.inf
    for melody in melodies:
        pitches = melody.pitches()
        stats.total_notes += len(melody)
        stats.note_counts.append(len(melody))
        pitch_min = min(pitch_min, float(pitches.min()))
        pitch_max = max(pitch_max, float(pitches.max()))
        for prev, curr in zip(pitches, pitches[1:]):
            stats.interval_histogram[int(round(curr - prev))] += 1
        for note in melody:
            stats.duration_histogram[round(float(note.duration), 2)] += 1
        if estimate_keys:
            tonic, mode, _ = estimate_key(melody)
            stats.key_distribution[key_name(tonic, mode)] += 1
    stats.pitch_min = pitch_min
    stats.pitch_max = pitch_max
    return stats


def find_duplicates(melodies: Sequence[Melody]) -> list[list[int]]:
    """Groups of indices whose melodies are note-for-note identical.

    Phrase-repetition in songs produces exact duplicates when segmented
    (our synthetic corpus reproduces this deliberately); knowing the
    groups explains tied distances in query results.
    """
    groups: dict[tuple, list[int]] = {}
    for index, melody in enumerate(melodies):
        key = tuple((note.pitch, note.duration) for note in melody)
        groups.setdefault(key, []).append(index)
    return [members for members in groups.values() if len(members) > 1]
