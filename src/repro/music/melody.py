"""Melody model: sequences of ``(note, duration)`` tuples (Section 3.2).

A melody is monophonic — one note at a time.  Rests are *not* part of
the model: the paper drops silence both from the database melodies and
from the hummed queries because amateur singers time rests badly.
``Melody.to_time_series`` produces the piecewise-constant pitch series

.. math:: N_1, \\ldots, N_1, N_2, \\ldots, N_2, \\ldots

with each note repeated proportionally to its duration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Note", "Melody", "midi_to_hz", "hz_to_midi"]

_NOTE_NAMES = ["C", "C#", "D", "D#", "E", "F", "F#", "G", "G#", "A", "A#", "B"]


def midi_to_hz(pitch: float) -> float:
    """Frequency of a MIDI pitch number (A4 = 69 = 440 Hz)."""
    return 440.0 * 2.0 ** ((pitch - 69.0) / 12.0)


def hz_to_midi(freq: float) -> float:
    """MIDI pitch number of a frequency in Hz."""
    if freq <= 0:
        raise ValueError(f"frequency must be positive, got {freq}")
    return 69.0 + 12.0 * np.log2(freq / 440.0)


@dataclass(frozen=True)
class Note:
    """One melody note.

    Attributes
    ----------
    pitch:
        MIDI pitch number (60 = middle C).  Fractional values are
        allowed — hummed notes rarely land on the grid.
    duration:
        Length in beats; must be positive.
    """

    pitch: float
    duration: float

    def __post_init__(self) -> None:
        if not 0 < self.pitch < 128:
            raise ValueError(f"pitch must be in (0, 128), got {self.pitch}")
        if self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")

    @property
    def name(self) -> str:
        """Scientific pitch name of the nearest tempered note."""
        rounded = int(round(self.pitch))
        octave = rounded // 12 - 1
        return f"{_NOTE_NAMES[rounded % 12]}{octave}"

    @property
    def frequency(self) -> float:
        return midi_to_hz(self.pitch)


class Melody:
    """An immutable monophonic melody.

    Parameters
    ----------
    notes:
        Iterable of :class:`Note` or ``(pitch, duration)`` pairs.
    name:
        Optional label (song title, phrase id).
    """

    def __init__(self, notes, *, name: str = "") -> None:
        parsed = []
        for item in notes:
            if isinstance(item, Note):
                parsed.append(item)
            else:
                pitch, duration = item
                parsed.append(Note(float(pitch), float(duration)))
        if not parsed:
            raise ValueError("a melody must contain at least one note")
        self._notes = tuple(parsed)
        self.name = name

    @property
    def notes(self) -> tuple[Note, ...]:
        return self._notes

    def __len__(self) -> int:
        return len(self._notes)

    def __iter__(self):
        return iter(self._notes)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Melody):
            return NotImplemented
        return self._notes == other._notes

    def __hash__(self) -> int:
        return hash(self._notes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        return f"Melody({len(self)} notes{label})"

    @property
    def total_beats(self) -> float:
        return sum(note.duration for note in self._notes)

    def pitches(self) -> np.ndarray:
        return np.array([note.pitch for note in self._notes])

    def durations(self) -> np.ndarray:
        return np.array([note.duration for note in self._notes])

    def transpose(self, semitones: float) -> "Melody":
        """A copy shifted by *semitones* (may be fractional)."""
        return Melody(
            [(note.pitch + semitones, note.duration) for note in self._notes],
            name=self.name,
        )

    def scale_tempo(self, factor: float) -> "Melody":
        """A copy with every duration multiplied by *factor*."""
        if factor <= 0:
            raise ValueError(f"tempo factor must be positive, got {factor}")
        return Melody(
            [(note.pitch, note.duration * factor) for note in self._notes],
            name=self.name,
        )

    def slice_notes(self, start: int, stop: int) -> "Melody":
        """Sub-melody of notes ``[start, stop)``."""
        if not 0 <= start < stop <= len(self):
            raise ValueError(
                f"invalid note slice [{start}, {stop}) of {len(self)} notes"
            )
        return Melody(self._notes[start:stop], name=self.name)

    def to_time_series(self, samples_per_beat: int = 8) -> np.ndarray:
        """Piecewise-constant pitch time series (Section 3.2).

        Each note contributes ``round(duration * samples_per_beat)``
        samples (at least one, so very short notes are not lost).
        """
        if samples_per_beat < 1:
            raise ValueError(
                f"samples_per_beat must be >= 1, got {samples_per_beat}"
            )
        chunks = [
            np.full(
                max(1, int(round(note.duration * samples_per_beat))), note.pitch
            )
            for note in self._notes
        ]
        return np.concatenate(chunks)

    @classmethod
    def from_time_series(cls, series, *, samples_per_beat: int = 8,
                         name: str = "") -> "Melody":
        """Inverse of :meth:`to_time_series` for piecewise-constant input.

        Consecutive equal samples are merged into one note.  This is a
        modelling helper, not a transcription algorithm — for hummed
        audio use :mod:`repro.hum.segmentation`.
        """
        arr = np.asarray(series, dtype=np.float64)
        if arr.ndim != 1 or arr.size == 0:
            raise ValueError("series must be a non-empty 1-D array")
        notes = []
        run_start = 0
        for i in range(1, arr.size + 1):
            if i == arr.size or arr[i] != arr[run_start]:
                notes.append(
                    (arr[run_start], (i - run_start) / samples_per_beat)
                )
                run_start = i
        return cls(notes, name=name)
