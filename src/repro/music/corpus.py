"""Synthetic song corpus — the stand-in for the paper's music data.

The paper's quality experiments use 50 hand-entered Beatles songs
segmented into 1000 melodies of 15-30 notes; the scalability experiment
uses 35,000 melodies from Internet MIDI files.  Neither dataset ships
with the paper, so this module generates tonal pop-like songs with the
statistical properties the experiments rely on: a small pitch alphabet
from a key/scale, step-biased motion, phrase structure with repetition,
and simple rhythm patterns.  Generation is deterministic per seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .melody import Melody

__all__ = ["Song", "SongGenerator", "generate_corpus", "segment_corpus", "EXAMPLE_PHRASE"]

SCALES = {
    "major": (0, 2, 4, 5, 7, 9, 11),
    "natural_minor": (0, 2, 3, 5, 7, 8, 10),
    "major_pentatonic": (0, 2, 4, 7, 9),
    "minor_pentatonic": (0, 3, 5, 7, 10),
}

#: Common one-bar rhythm cells (in beats), concatenated to fill phrases.
RHYTHM_CELLS = (
    (1.0, 1.0, 1.0, 1.0),
    (2.0, 1.0, 1.0),
    (1.0, 1.0, 2.0),
    (1.5, 0.5, 1.0, 1.0),
    (0.5, 0.5, 1.0, 1.0, 1.0),
    (2.0, 2.0),
    (1.0, 0.5, 0.5, 2.0),
    (3.0, 1.0),
)

#: A short built-in phrase with the dip-and-rise contour of the paper's
#: "Hey Jude" illustration (Figures 1-3); used by examples and tests.
EXAMPLE_PHRASE = Melody(
    [
        (60, 2.0), (57, 2.0), (57, 1.0), (60, 1.0), (62, 1.0), (55, 2.0),
        (55, 2.0), (57, 1.0), (59, 1.0), (64, 2.0), (64, 1.0), (62, 2.0),
    ],
    name="example-phrase",
)


@dataclass
class Song:
    """A generated song: its full melody and its phrase segmentation."""

    name: str
    key: int
    mode: str
    phrases: list[Melody] = field(default_factory=list)

    @property
    def melody(self) -> Melody:
        notes = []
        for phrase in self.phrases:
            notes.extend(phrase.notes)
        return Melody(notes, name=self.name)

    @property
    def note_count(self) -> int:
        return sum(len(p) for p in self.phrases)


class SongGenerator:
    """Deterministic generator of tonal pop-like songs.

    Parameters
    ----------
    seed:
        Seed of the internal random generator; same seed, same corpus.
    """

    def __init__(self, seed: int = 0) -> None:
        self._rng = np.random.default_rng(seed)

    def _scale_pitches(self, key: int, mode: str) -> np.ndarray:
        """Scale pitches across ~2 octaves around the key center."""
        degrees = SCALES[mode]
        pitches = [key + 12 * octave + d for octave in (-1, 0, 1) for d in degrees]
        return np.array(sorted(p for p in pitches if 48 <= p <= 84), dtype=float)

    def _phrase(
        self, scale: np.ndarray, n_notes: int, start_index: int
    ) -> tuple[Melody, int]:
        """One phrase: a step-biased walk over scale indices."""
        rng = self._rng
        # Steps of +-1 dominate; occasional leaps; slight downward pull
        # when high, upward when low, to stay in tessitura.
        steps = np.array([-4, -3, -2, -1, 0, 1, 2, 3, 4])
        durations: list[float] = []
        while len(durations) < n_notes:
            durations.extend(RHYTHM_CELLS[rng.integers(len(RHYTHM_CELLS))])
        durations = durations[:n_notes]
        index = start_index
        notes = []
        for i in range(n_notes):
            centre_pull = (len(scale) / 2 - index) / len(scale)
            weights = np.array([2, 4, 10, 22, 8, 22, 10, 4, 2], dtype=float)
            # Bias the walk back toward the middle of the range.
            weights *= np.exp(steps * centre_pull)
            weights /= weights.sum()
            step = rng.choice(steps, p=weights)
            index = int(np.clip(index + step, 0, len(scale) - 1))
            if i == n_notes - 1 and rng.random() < 0.6:
                # Cadence: resolve near the tonic region of the scale.
                index = int(np.clip(len(scale) // 2 + rng.integers(-1, 2), 0,
                                    len(scale) - 1))
            notes.append((scale[index], durations[i]))
        return Melody(notes), index

    def song(self, name: str, *, n_phrases: int = 10,
             notes_per_phrase: tuple[int, int] = (7, 11)) -> Song:
        """Generate one song with an AAB-style repetition structure."""
        rng = self._rng
        key = int(rng.integers(55, 72))
        mode = list(SCALES)[rng.integers(len(SCALES))]
        scale = self._scale_pitches(key, mode)
        song = Song(name=name, key=key, mode=mode)
        motifs: list[Melody] = []
        index = len(scale) // 2
        for p in range(n_phrases):
            reuse = motifs and rng.random() < 0.4
            if reuse:
                motif = motifs[rng.integers(len(motifs))]
                if rng.random() < 0.5:
                    # Vary the repetition: transpose within the scale by
                    # snapping a shifted copy back onto scale pitches.
                    shift = rng.choice([-4, -3, 3, 4])
                    snapped = [
                        (scale[np.abs(scale - (n.pitch + shift)).argmin()],
                         n.duration)
                        for n in motif
                    ]
                    phrase = Melody(snapped)
                else:
                    phrase = motif
            else:
                n_notes = int(rng.integers(notes_per_phrase[0],
                                           notes_per_phrase[1] + 1))
                phrase, index = self._phrase(scale, n_notes, index)
                motifs.append(phrase)
            song.phrases.append(
                Melody(phrase.notes, name=f"{name}/p{p}")
            )
        return song


def generate_corpus(n_songs: int = 50, *, seed: int = 0,
                    n_phrases: int = 10) -> list[Song]:
    """Generate a deterministic corpus of *n_songs* songs."""
    if n_songs < 1:
        raise ValueError(f"n_songs must be >= 1, got {n_songs}")
    gen = SongGenerator(seed)
    return [gen.song(f"song{idx:03d}", n_phrases=n_phrases)
            for idx in range(n_songs)]


def segment_corpus(
    songs: list[Song],
    *,
    min_notes: int = 15,
    max_notes: int = 30,
    per_song: int = 20,
    seed: int = 0,
) -> list[Melody]:
    """Cut songs into query-sized melodies (the paper's 1000 pieces).

    Windows of consecutive phrases are merged until they hold between
    *min_notes* and *max_notes* notes; *per_song* windows are taken per
    song at rotating phrase offsets, so 50 songs x 20 = 1000 melodies.
    """
    if min_notes < 1 or max_notes < min_notes:
        raise ValueError("need 1 <= min_notes <= max_notes")
    rng = np.random.default_rng(seed)
    melodies = []
    for song in songs:
        phrases = song.phrases
        produced = 0
        start = 0
        attempts = 0
        while produced < per_song and attempts < per_song * 10:
            attempts += 1
            start = (start + 1) % len(phrases)
            notes = []
            stop = start
            while len(notes) < min_notes and stop < len(phrases):
                notes.extend(phrases[stop].notes)
                stop += 1
            if len(notes) < min_notes:
                continue
            if len(notes) > max_notes:
                offset = int(rng.integers(0, len(notes) - max_notes + 1))
                notes = notes[offset : offset + max_notes]
            melodies.append(
                Melody(notes, name=f"{song.name}#m{produced:02d}")
            )
            produced += 1
    return melodies
