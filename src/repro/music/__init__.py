"""Music substrate: melodies, MIDI IO, synthetic corpus, contour baseline."""

from .analysis import CorpusStats, analyze_corpus, find_duplicates
from .contour import ContourIndex, contour_string, edit_distance
from .corpus import EXAMPLE_PHRASE, Song, SongGenerator, generate_corpus, segment_corpus
from .melody import Melody, Note, hz_to_midi, midi_to_hz
from .midi import MidiFile, melodies_from_midi_bytes, melody_to_midi_bytes
from .notation import melody_to_abc
from .theory import (
    PITCH_CLASSES,
    estimate_key,
    interval_name,
    key_name,
    pitch_class_histogram,
)

__all__ = [
    "CorpusStats",
    "analyze_corpus",
    "find_duplicates",
    "ContourIndex",
    "contour_string",
    "edit_distance",
    "EXAMPLE_PHRASE",
    "Song",
    "SongGenerator",
    "generate_corpus",
    "segment_corpus",
    "Melody",
    "Note",
    "hz_to_midi",
    "midi_to_hz",
    "MidiFile",
    "melodies_from_midi_bytes",
    "melody_to_midi_bytes",
    "melody_to_abc",
    "PITCH_CLASSES",
    "estimate_key",
    "interval_name",
    "key_name",
    "pitch_class_histogram",
]
