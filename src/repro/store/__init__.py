"""Columnar float32 store for envelopes, features, and subsequence metadata.

The store is the on-disk layout behind streaming ingest (ROADMAP item 3):
instead of per-melody float64 arrays pickled into one ``.npz``, a corpus
lives in a *store root* directory holding immutable **generations**.  Each
generation is a directory of append-friendly **segment files** — one raw
little-endian binary per (segment, column) pair — described by a
``manifest.json`` with per-file SHA-256 checksums.  A ``CURRENT`` pointer
file names the active generation and is swapped atomically with
``os.replace``, so readers always see a complete generation.

Columns (all row-aligned):

``normalized``   float32, (rows, normal_length) — normal-form windows
``env_lower``    float32, (rows, normal_length) — LDTW k-envelope lower
``env_upper``    float32, (rows, normal_length) — LDTW k-envelope upper
``features``     float32, (rows, n_features)   — GEMINI envelope features
``meta``         int64,   (rows, 3)            — (sequence row, start, length)

Envelope values are order statistics of the stored float32 data, so the
float32 envelope columns are *exact* for the stored corpus.  Features are
computed in float64 and quantized to float32; the manifest records the
maximum absolute quantization error (``feature_margin``) so index-side
lower bounds can be slackened to keep the zero-false-negative contract
with respect to the stored corpus.
"""

from .manifest import (
    COLUMN_SPECS,
    FORMAT_VERSION,
    Manifest,
    SegmentMeta,
    file_sha256,
    load_manifest,
)
from .corpus import (
    CorpusStore,
    GenerationWriter,
    StoreError,
    activate_generation,
    current_generation,
    generation_dirname,
    init_store,
    list_generations,
    prune_generations,
)

__all__ = [
    "COLUMN_SPECS",
    "FORMAT_VERSION",
    "CorpusStore",
    "GenerationWriter",
    "Manifest",
    "SegmentMeta",
    "StoreError",
    "activate_generation",
    "current_generation",
    "file_sha256",
    "generation_dirname",
    "init_store",
    "list_generations",
    "load_manifest",
    "prune_generations",
]
