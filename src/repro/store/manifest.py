"""Manifest format for columnar store generations.

One ``manifest.json`` per generation directory.  The manifest is the
commit record: a generation directory without a readable manifest is
incomplete and is never activated.  It carries the column schema, the
ordered segment list with per-file SHA-256 checksums, the corpus
dimensions, and the float32 quantization margin for features.

The manifest is deliberately plain JSON (no numpy types) so it can be
inspected with any tool and validated by CI without importing the
package.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "COLUMN_SPECS",
    "FORMAT_VERSION",
    "Manifest",
    "SegmentMeta",
    "file_sha256",
    "load_manifest",
    "save_manifest",
]

#: Manifest format version; bump on incompatible layout changes.
FORMAT_VERSION = 1

#: Column schema: name -> (numpy dtype string, width source).  Width
#: source is ``"normal_length"``, ``"n_features"``, or a literal int.
COLUMN_SPECS: dict[str, tuple[str, Any]] = {
    "normalized": ("float32", "normal_length"),
    "env_lower": ("float32", "normal_length"),
    "env_upper": ("float32", "normal_length"),
    "features": ("float32", "n_features"),
    "meta": ("int64", 3),
}

_HASH_CHUNK = 1 << 20


def file_sha256(path: str) -> str:
    """SHA-256 hex digest of a file, streamed in 1 MiB chunks."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(_HASH_CHUNK)
            if not chunk:
                break
            digest.update(chunk)
    return digest.hexdigest()


@dataclass
class SegmentMeta:
    """One immutable segment: ``rows`` rows across every column file."""

    name: str
    rows: int
    #: column name -> {"file": relative filename, "sha256": hex digest}
    files: dict[str, dict[str, str]] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "rows": self.rows, "files": self.files}

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "SegmentMeta":
        return cls(name=str(payload["name"]), rows=int(payload["rows"]),
                   files=dict(payload["files"]))


@dataclass
class Manifest:
    """Parsed ``manifest.json`` for one generation."""

    generation: int
    rows: int
    normal_length: int
    n_features: int
    metric: str
    kind: str  # "melody" | "subsequence"
    feature_margin: float
    created_s: float
    segments: list[SegmentMeta] = field(default_factory=list)
    config: dict[str, Any] = field(default_factory=dict)
    format_version: int = FORMAT_VERSION
    ids_file: str = "ids.json"

    def column_width(self, column: str) -> int:
        spec = COLUMN_SPECS[column]
        if spec[1] == "normal_length":
            return self.normal_length
        if spec[1] == "n_features":
            return self.n_features
        return int(spec[1])

    def to_dict(self) -> dict[str, Any]:
        return {
            "format_version": self.format_version,
            "generation": self.generation,
            "rows": self.rows,
            "normal_length": self.normal_length,
            "n_features": self.n_features,
            "metric": self.metric,
            "kind": self.kind,
            "feature_margin": self.feature_margin,
            "created_s": self.created_s,
            "ids_file": self.ids_file,
            "columns": {
                name: {"dtype": dtype,
                       "cols": self.column_width(name)}
                for name, (dtype, _) in COLUMN_SPECS.items()
            },
            "segments": [segment.to_dict() for segment in self.segments],
            "config": self.config,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Manifest":
        version = int(payload.get("format_version", -1))
        if version != FORMAT_VERSION:
            raise ValueError(
                f"unsupported store manifest version {version} "
                f"(supported: {FORMAT_VERSION})"
            )
        return cls(
            generation=int(payload["generation"]),
            rows=int(payload["rows"]),
            normal_length=int(payload["normal_length"]),
            n_features=int(payload["n_features"]),
            metric=str(payload["metric"]),
            kind=str(payload["kind"]),
            feature_margin=float(payload["feature_margin"]),
            created_s=float(payload["created_s"]),
            ids_file=str(payload.get("ids_file", "ids.json")),
            segments=[SegmentMeta.from_dict(s)
                      for s in payload["segments"]],
            config=dict(payload.get("config", {})),
            format_version=version,
        )


def save_manifest(manifest: Manifest, directory: str) -> str:
    """Write ``manifest.json`` atomically (tmp + fsync + replace)."""
    path = os.path.join(directory, "manifest.json")
    tmp = path + ".tmp"
    with open(tmp, "w") as handle:
        json.dump(manifest.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return path


def load_manifest(directory: str) -> Manifest:
    path = os.path.join(directory, "manifest.json")
    with open(path) as handle:
        return Manifest.from_dict(json.load(handle))
