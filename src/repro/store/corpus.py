"""Generation-based columnar store: writers, readers, root helpers.

A store root looks like::

    store/
      CURRENT                 # text file naming the active generation
      gen-000000/
        manifest.json
        ids.json
        seg-000000.normalized.bin
        seg-000000.env_lower.bin
        ...
      gen-000001/             # next generation: links old segments,
        manifest.json         # appends one new segment
        ids.json
        seg-000000.normalized.bin   # hard link into gen-000000's file
        seg-000001.normalized.bin   # the newly ingested rows
        ...

Generations are immutable once their manifest is written.  A new
generation *inherits* the previous generation's segment files by hard
link (falling back to a copy on filesystems without link support), so
an incremental ingest writes O(new rows) bytes, not O(corpus).  The
``CURRENT`` pointer is swapped with ``os.replace`` so a crash mid-swap
leaves the old generation active.
"""

from __future__ import annotations

import json
import os
import shutil
from hashlib import sha256
from typing import Any, Iterable, Sequence

import numpy as np

from ..obs.clock import wall_s
from .manifest import (
    COLUMN_SPECS,
    Manifest,
    SegmentMeta,
    file_sha256,
    load_manifest,
    save_manifest,
)

__all__ = [
    "CorpusStore",
    "GenerationWriter",
    "StoreError",
    "activate_generation",
    "current_generation",
    "generation_dirname",
    "init_store",
    "list_generations",
    "prune_generations",
]

_CURRENT = "CURRENT"
_GEN_PREFIX = "gen-"


class StoreError(RuntimeError):
    """Raised for malformed store roots, manifests, or checksums."""


def generation_dirname(generation: int) -> str:
    return f"{_GEN_PREFIX}{generation:06d}"


def init_store(root: str) -> str:
    """Create a store root directory (idempotent) and return it."""
    os.makedirs(root, exist_ok=True)
    return root


def current_generation(root: str) -> int | None:
    """Generation number named by ``CURRENT``, or ``None`` if unset."""
    path = os.path.join(root, _CURRENT)
    try:
        with open(path) as handle:
            name = handle.read().strip()
    except FileNotFoundError:
        return None
    if not name.startswith(_GEN_PREFIX):
        raise StoreError(f"{path}: malformed CURRENT pointer {name!r}")
    return int(name[len(_GEN_PREFIX):])


def list_generations(root: str) -> list[int]:
    """Sorted generation numbers with a readable manifest."""
    found = []
    try:
        entries = os.listdir(root)
    except FileNotFoundError:
        return []
    for entry in entries:
        if not entry.startswith(_GEN_PREFIX):
            continue
        if os.path.isfile(os.path.join(root, entry, "manifest.json")):
            try:
                found.append(int(entry[len(_GEN_PREFIX):]))
            except ValueError:
                continue
    return sorted(found)


def activate_generation(root: str, generation: int) -> None:
    """Atomically point ``CURRENT`` at *generation* (``os.replace``)."""
    directory = os.path.join(root, generation_dirname(generation))
    if not os.path.isfile(os.path.join(directory, "manifest.json")):
        raise StoreError(
            f"cannot activate generation {generation}: no manifest in "
            f"{directory}"
        )
    path = os.path.join(root, _CURRENT)
    tmp = path + ".tmp"
    with open(tmp, "w") as handle:
        handle.write(generation_dirname(generation) + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


def prune_generations(root: str, *, keep: int = 2) -> list[int]:
    """Delete all but the newest *keep* generations (never CURRENT).

    Returns the generation numbers removed.  Hard-linked segment files
    shared with surviving generations keep their inodes alive, so
    pruning only reclaims bytes unique to the pruned generation.
    """
    generations = list_generations(root)
    active = current_generation(root)
    removable = [g for g in generations if g != active]
    keep_from_removable = max(0, keep - (1 if active is not None else 0))
    doomed = (removable[:-keep_from_removable] if keep_from_removable
              else removable)
    for generation in doomed:
        shutil.rmtree(os.path.join(root, generation_dirname(generation)),
                      ignore_errors=True)
    return doomed


def _link_or_copy(src: str, dst: str) -> None:
    try:
        os.link(src, dst)
    except OSError:
        shutil.copyfile(src, dst)


class GenerationWriter:
    """Streaming writer for one new generation.

    Appends go into exactly one new segment whose column files grow
    chunk by chunk (running SHA-256, no re-read at seal time).  Pass
    ``inherit_from`` to carry a previous generation's segments forward
    by hard link — the incremental-ingest path.

    Usage::

        writer = GenerationWriter(root, generation=1, normal_length=64,
                                  n_features=8, metric="euclidean",
                                  kind="melody", inherit_from=old_store)
        writer.append(normalized, features, env_lower, env_upper, meta,
                      ids=["m-900"])
        store = writer.seal(feature_margin=2e-7)
        activate_generation(root, 1)
    """

    def __init__(self, root: str, generation: int, *,
                 normal_length: int, n_features: int, metric: str,
                 kind: str, config: dict[str, Any] | None = None,
                 inherit_from: "CorpusStore | None" = None) -> None:
        if kind not in ("melody", "subsequence"):
            raise StoreError(f"unknown store kind {kind!r}")
        self.root = init_store(root)
        self.generation = int(generation)
        self.directory = os.path.join(root, generation_dirname(generation))
        if os.path.exists(self.directory):
            if os.path.exists(os.path.join(self.directory, "manifest.json")):
                raise StoreError(
                    f"generation directory already exists: {self.directory}"
                )
            # No manifest: a writer died before sealing.  The
            # manifest-last commit protocol makes the leftovers garbage;
            # reclaim the directory.
            shutil.rmtree(self.directory)
        os.makedirs(self.directory)
        self._normal_length = int(normal_length)
        self._n_features = int(n_features)
        self._metric = metric
        self._kind = kind
        self._config = dict(config or {})
        self._segments: list[SegmentMeta] = []
        self._ids: list[Any] = []
        self._known_ids: set[str] = set()
        self._inherited_rows = 0
        self._inherited_margin = 0.0
        if inherit_from is not None:
            self._inherit(inherit_from)
        self._seg_name = f"seg-{len(self._segments):06d}"
        self._handles: dict[str, Any] = {}
        self._hashers: dict[str, Any] = {}
        self._new_rows = 0
        self._sealed = False

    # -- internals ---------------------------------------------------

    def _inherit(self, store: "CorpusStore") -> None:
        manifest = store.manifest
        if (manifest.normal_length != self._normal_length
                or manifest.n_features != self._n_features
                or manifest.metric != self._metric
                or manifest.kind != self._kind):
            raise StoreError(
                "cannot inherit: schema mismatch with previous generation "
                f"(normal_length {manifest.normal_length} vs "
                f"{self._normal_length}, n_features {manifest.n_features} "
                f"vs {self._n_features}, metric {manifest.metric!r} vs "
                f"{self._metric!r}, kind {manifest.kind!r} vs "
                f"{self._kind!r})"
            )
        for segment in manifest.segments:
            files: dict[str, dict[str, str]] = {}
            for column, entry in segment.files.items():
                src = os.path.join(store.directory, entry["file"])
                dst = os.path.join(self.directory, entry["file"])
                _link_or_copy(src, dst)
                files[column] = dict(entry)
            self._segments.append(SegmentMeta(
                name=segment.name, rows=segment.rows, files=files))
        self._ids = list(store.ids)
        self._known_ids = set(map(repr, self._ids))
        self._inherited_rows = manifest.rows
        self._inherited_margin = manifest.feature_margin

    def _column_path(self, column: str) -> str:
        return os.path.join(self.directory, f"{self._seg_name}.{column}.bin")

    def _write_column(self, column: str, chunk: np.ndarray) -> None:
        dtype, _ = COLUMN_SPECS[column]
        width = (self._normal_length
                 if COLUMN_SPECS[column][1] == "normal_length"
                 else self._n_features
                 if COLUMN_SPECS[column][1] == "n_features"
                 else int(COLUMN_SPECS[column][1]))
        data = np.ascontiguousarray(chunk, dtype=np.dtype(dtype))
        if data.ndim != 2 or data.shape[1] != width:
            raise StoreError(
                f"column {column!r} chunk has shape {data.shape}, "
                f"expected (rows, {width})"
            )
        if column not in self._handles:
            self._handles[column] = open(self._column_path(column), "ab")
            self._hashers[column] = sha256()
        raw = data.tobytes()
        self._handles[column].write(raw)
        self._hashers[column].update(raw)

    # -- public API --------------------------------------------------

    @property
    def rows(self) -> int:
        return self._inherited_rows + self._new_rows

    def append(self, normalized: np.ndarray, features: np.ndarray,
               env_lower: np.ndarray, env_upper: np.ndarray,
               meta: np.ndarray, *,
               ids: Sequence[Any] | None = None) -> None:
        """Append one row-aligned chunk to the new segment."""
        if self._sealed:
            raise StoreError("writer already sealed")
        chunk_rows = int(np.asarray(normalized).shape[0])
        for name, chunk in (("normalized", normalized),
                            ("features", features),
                            ("env_lower", env_lower),
                            ("env_upper", env_upper),
                            ("meta", meta)):
            if int(np.asarray(chunk).shape[0]) != chunk_rows:
                raise StoreError(
                    f"column {name!r} has {np.asarray(chunk).shape[0]} "
                    f"rows, expected {chunk_rows}"
                )
            self._write_column(name, np.asarray(chunk))
        if ids is not None:
            self.add_ids(ids)
        self._new_rows += chunk_rows

    def add_ids(self, ids: Sequence[Any]) -> None:
        """Register sequence ids (rejects duplicates across generations).

        For ``kind="melody"`` ids are row-aligned; for
        ``kind="subsequence"`` there is one id per *sequence* and the
        ``meta`` column's first field indexes into this list, so ids
        may be added independently of row chunks.
        """
        if self._sealed:
            raise StoreError("writer already sealed")
        for item in ids:
            key = repr(item)
            if key in self._known_ids:
                raise StoreError(f"duplicate id {item!r} in ingest")
            self._known_ids.add(key)
            self._ids.append(item)

    def seal(self, *, feature_margin: float = 0.0,
             extra_config: dict[str, Any] | None = None) -> "CorpusStore":
        """Flush, checksum, and write the manifest.  Returns a reader.

        The generation is *not* activated; call
        :func:`activate_generation` (or let the ingest worker do it)
        once the caller is ready to swap traffic over.
        """
        if self._sealed:
            raise StoreError("writer already sealed")
        self._sealed = True
        files: dict[str, dict[str, str]] = {}
        for column, handle in self._handles.items():
            handle.flush()
            os.fsync(handle.fileno())
            handle.close()
            files[column] = {
                "file": f"{self._seg_name}.{column}.bin",
                "sha256": self._hashers[column].hexdigest(),
            }
        if self._new_rows:
            missing = set(COLUMN_SPECS) - set(files)
            if missing:
                raise StoreError(f"segment missing columns {sorted(missing)}")
            self._segments.append(SegmentMeta(
                name=self._seg_name, rows=self._new_rows, files=files))
        config = dict(self._config)
        if extra_config:
            config.update(extra_config)
        manifest = Manifest(
            generation=self.generation,
            rows=self.rows,
            normal_length=self._normal_length,
            n_features=self._n_features,
            metric=self._metric,
            kind=self._kind,
            feature_margin=max(float(feature_margin),
                               self._inherited_margin),
            created_s=wall_s(),
            segments=self._segments,
            config=config,
        )
        ids_path = os.path.join(self.directory, manifest.ids_file)
        with open(ids_path, "w") as handle:
            json.dump(self._ids, handle)
            handle.flush()
            os.fsync(handle.fileno())
        save_manifest(manifest, self.directory)
        return CorpusStore.open(self.root, generation=self.generation)


class CorpusStore:
    """Read-only view of one generation (memory-mapped columns).

    Single-segment columns are served straight off ``np.memmap``;
    multi-segment columns are concatenated into one contiguous array on
    first access (a one-time O(rows) copy — index builds need
    contiguous inputs anyway).  All column arrays are row-aligned.
    """

    def __init__(self, root: str, generation: int,
                 manifest: Manifest) -> None:
        self.root = root
        self.generation = generation
        self.directory = os.path.join(root, generation_dirname(generation))
        self.manifest = manifest
        self._columns: dict[str, np.ndarray] = {}
        self._ids: list[Any] | None = None

    @classmethod
    def open(cls, root: str, *, generation: int | None = None
             ) -> "CorpusStore":
        if generation is None:
            generation = current_generation(root)
            if generation is None:
                raise StoreError(
                    f"{root}: no CURRENT generation (empty store?)"
                )
        directory = os.path.join(root, generation_dirname(generation))
        try:
            manifest = load_manifest(directory)
        except FileNotFoundError as exc:
            raise StoreError(
                f"{directory}: missing or incomplete generation"
            ) from exc
        return cls(root, generation, manifest)

    # -- columns -----------------------------------------------------

    def _map_segment(self, segment: SegmentMeta, column: str) -> np.ndarray:
        entry = segment.files[column]
        dtype = np.dtype(COLUMN_SPECS[column][0])
        width = self.manifest.column_width(column)
        path = os.path.join(self.directory, entry["file"])
        expected = segment.rows * width * dtype.itemsize
        actual = os.path.getsize(path)
        if actual != expected:
            raise StoreError(
                f"{path}: size {actual} != expected {expected} "
                f"({segment.rows} rows x {width} x {dtype})"
            )
        if segment.rows == 0:
            return np.empty((0, width), dtype=dtype)
        return np.memmap(path, dtype=dtype, mode="r",
                         shape=(segment.rows, width))

    def column(self, name: str) -> np.ndarray:
        """Row-aligned column array (memmap or concatenated copy)."""
        if name not in COLUMN_SPECS:
            raise StoreError(f"unknown column {name!r}")
        if name not in self._columns:
            parts = [self._map_segment(segment, name)
                     for segment in self.manifest.segments]
            if not parts:
                width = self.manifest.column_width(name)
                dtype = np.dtype(COLUMN_SPECS[name][0])
                array = np.empty((0, width), dtype=dtype)
            elif len(parts) == 1:
                array = parts[0]
            else:
                array = np.concatenate(parts, axis=0)
            if array.shape[0] != self.manifest.rows:
                raise StoreError(
                    f"column {name!r} has {array.shape[0]} rows, "
                    f"manifest says {self.manifest.rows}"
                )
            self._columns[name] = array
        return self._columns[name]

    @property
    def rows(self) -> int:
        return self.manifest.rows

    @property
    def feature_margin(self) -> float:
        return self.manifest.feature_margin

    @property
    def normalized(self) -> np.ndarray:
        return self.column("normalized")

    @property
    def features(self) -> np.ndarray:
        return self.column("features")

    @property
    def env_lower(self) -> np.ndarray:
        return self.column("env_lower")

    @property
    def env_upper(self) -> np.ndarray:
        return self.column("env_upper")

    @property
    def meta(self) -> np.ndarray:
        return self.column("meta")

    @property
    def ids(self) -> list[Any]:
        if self._ids is None:
            path = os.path.join(self.directory, self.manifest.ids_file)
            with open(path) as handle:
                self._ids = json.load(handle)
        return list(self._ids)

    # -- validation --------------------------------------------------

    def verify(self, *, raise_on_error: bool = True) -> list[str]:
        """Recompute checksums and cross-check shapes.

        Raises :class:`StoreError` listing every problem found (pass
        ``raise_on_error=False`` to get the list back instead — the
        report form the CLI uses).  An empty list means the generation
        is intact.
        """
        errors: list[str] = []
        total = 0
        for segment in self.manifest.segments:
            total += segment.rows
            missing = set(COLUMN_SPECS) - set(segment.files)
            if missing:
                errors.append(
                    f"{segment.name}: missing columns {sorted(missing)}"
                )
            for column, entry in segment.files.items():
                path = os.path.join(self.directory, entry["file"])
                if not os.path.isfile(path):
                    errors.append(f"{segment.name}.{column}: missing file "
                                  f"{entry['file']}")
                    continue
                digest = file_sha256(path)
                if digest != entry["sha256"]:
                    errors.append(
                        f"{segment.name}.{column}: checksum mismatch "
                        f"({digest[:12]}... != {entry['sha256'][:12]}...)"
                    )
        if total != self.manifest.rows:
            errors.append(
                f"segment rows sum to {total}, manifest says "
                f"{self.manifest.rows}"
            )
        kind = self.manifest.kind
        try:
            ids = self.ids
        except (OSError, json.JSONDecodeError) as exc:
            errors.append(f"ids file unreadable: {exc}")
            ids = []
        if kind == "melody" and len(ids) != self.manifest.rows:
            errors.append(
                f"melody store has {len(ids)} ids for "
                f"{self.manifest.rows} rows"
            )
        if not errors and self.manifest.rows:
            meta = self.meta
            if kind == "subsequence" and ids:
                max_row = int(meta[:, 0].max())
                if max_row >= len(ids):
                    errors.append(
                        f"meta references sequence row {max_row} but only "
                        f"{len(ids)} ids are stored"
                    )
            lower, upper = self.env_lower, self.env_upper
            data = self.normalized
            if not (np.all(lower <= data) and np.all(data <= upper)):
                errors.append("envelope columns do not bound the data")
        if errors and raise_on_error:
            raise StoreError(
                f"generation {self.generation} failed verification: "
                + "; ".join(errors)
            )
        return errors


def iter_chunks(array: np.ndarray, chunk_rows: int) -> Iterable[np.ndarray]:
    """Yield row chunks of *array* (helper for chunked feature passes)."""
    for start in range(0, array.shape[0], chunk_rows):
        yield array[start:start + chunk_rows]
