"""Benchmark history: an append-only JSONL trajectory of runs.

The ``BENCH_*.json`` files the benchmark suite writes are one-shot
snapshots — useful artifacts, useless trajectories.  This module gives
every run a durable record in ``BENCH_history.jsonl``::

    {"schema": 1, "bench": "cascade", "timestamp_s": ...,
     "git_sha": "...", "machine": {"fingerprint": "...", ...},
     "timings_ms": {"cascade": 9.4, "scalar_loop": 337.3, ...},
     "context": {"db_size": 10000, "length": 128, "delta": 0.1}}

Design points:

* **Append-only JSONL** — one entry per line, written atomically per
  line, so concurrent benchmark processes and crashed runs cannot
  corrupt earlier history; damaged lines are skipped (and counted) on
  read, mirroring the trace reader's tolerance.
* **Machine fingerprint** — timings are only comparable on comparable
  hardware; each entry carries a short digest of platform, CPU count,
  and Python build, and the regression gate keys on it.
* **Workload context** — a bench at smoke scale is a different
  experiment than at full scale; entries carry the workload parameters
  and the gate only compares equal contexts.

``tools/check_bench_schema.py`` validates the file in CI.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import subprocess
import sys
from dataclasses import dataclass

from ..obs.clock import wall_s

__all__ = [
    "BENCH_HISTORY_SCHEMA",
    "machine_fingerprint",
    "git_sha",
    "make_entry",
    "BenchHistory",
]

#: Version tag of the history-entry schema.
BENCH_HISTORY_SCHEMA = 1

#: Keys every history entry must carry (the check_bench_schema contract).
REQUIRED_KEYS = ("schema", "bench", "timestamp_s", "git_sha", "machine",
                 "timings_ms", "context")


def machine_fingerprint() -> dict:
    """Identify the benchmarking machine, with a short stable digest.

    The fingerprint hashes what makes timings comparable — platform,
    machine architecture, CPU count, and the Python implementation —
    not what doesn't (hostname, time).  The regression gate refuses to
    compare runs across different fingerprints unless explicitly told
    to.
    """
    desc = {
        "platform": platform.system(),
        "arch": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
        "python": "%s %d.%d" % (
            platform.python_implementation(),
            sys.version_info.major, sys.version_info.minor,
        ),
    }
    digest = hashlib.sha1(
        json.dumps(desc, sort_keys=True).encode()
    ).hexdigest()[:12]
    return {"fingerprint": digest, **desc}


def git_sha(root=None) -> str:
    """The current commit hash, or ``"unknown"`` outside a checkout.

    ``REPRO_GIT_SHA`` overrides (CI containers without a ``.git``
    directory set it from their own metadata).
    """
    env = os.environ.get("REPRO_GIT_SHA")
    if env:
        return env
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=root, capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def make_entry(
    bench: str,
    timings_ms: dict,
    context: dict | None = None,
    *,
    machine: dict | None = None,
    sha: str | None = None,
    timestamp_s: float | None = None,
) -> dict:
    """Build one schema-valid history entry for a benchmark run.

    *timings_ms* maps metric names to milliseconds (non-negative
    numbers); *context* carries the workload parameters that make two
    runs comparable.  Machine, git SHA, and timestamp are filled from
    the environment unless given.
    """
    clean = {}
    for name, value in dict(timings_ms).items():
        if not isinstance(value, (int, float)) or value < 0:
            raise ValueError(
                f"timing {name!r} must be a non-negative number, "
                f"got {value!r}"
            )
        clean[str(name)] = float(value)
    if not clean:
        raise ValueError("timings_ms must not be empty")
    return {
        "schema": BENCH_HISTORY_SCHEMA,
        "bench": str(bench),
        "timestamp_s": float(timestamp_s if timestamp_s is not None
                             else wall_s()),
        "git_sha": sha if sha is not None else git_sha(),
        "machine": dict(machine) if machine is not None
        else machine_fingerprint(),
        "timings_ms": clean,
        "context": dict(context or {}),
    }


@dataclass
class HistoryReadStats:
    """Accounting of one history read (how many lines were skipped)."""

    lines: int = 0
    entries: int = 0
    bad_lines: int = 0


class BenchHistory:
    """The ``BENCH_history.jsonl`` store: append runs, read them back."""

    def __init__(self, path) -> None:
        self.path = path
        self.read_stats = HistoryReadStats()

    def append(self, entry: dict) -> dict:
        """Append one entry (validated minimally) and return it."""
        missing = [key for key in REQUIRED_KEYS if key not in entry]
        if missing:
            raise ValueError(f"history entry missing keys {missing}")
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry, sort_keys=True) + "\n")
        return entry

    def record(self, bench: str, timings_ms: dict,
               context: dict | None = None, **kwargs) -> dict:
        """:func:`make_entry` + :meth:`append` in one call."""
        return self.append(make_entry(bench, timings_ms, context, **kwargs))

    def entries(self) -> list[dict]:
        """Every parseable entry, in file order; damaged lines skipped.

        Skip counts land in :attr:`read_stats` (reset per call).  A
        missing file reads as empty history.
        """
        stats = HistoryReadStats()
        self.read_stats = stats
        out = []
        try:
            handle = open(self.path, encoding="utf-8")
        except FileNotFoundError:
            return out
        with handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                stats.lines += 1
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    stats.bad_lines += 1
                    continue
                if (not isinstance(entry, dict)
                        or any(key not in entry for key in REQUIRED_KEYS)):
                    stats.bad_lines += 1
                    continue
                stats.entries += 1
                out.append(entry)
        return out

    def for_bench(self, bench: str) -> list[dict]:
        """Entries of one benchmark, in file (i.e. time) order."""
        return [entry for entry in self.entries()
                if entry["bench"] == bench]

    def benches(self) -> list[str]:
        """Distinct bench names present, in first-seen order."""
        seen: list[str] = []
        for entry in self.entries():
            if entry["bench"] not in seen:
                seen.append(entry["bench"])
        return seen
