"""The statistical performance-regression gate.

A slowdown in the filter cascade is a silent correctness problem for
the paper's contribution — Theorem 1's no-false-negative guarantee is
only worth having if pruning stays fast — so the gate's job is to turn
``BENCH_history.jsonl`` into a pass/fail answer a CI job can enforce.

The comparison, per bench and per timing metric:

* **Candidate** — the newest run of the bench (optionally the median
  of the newest *k* runs, damping a single noisy repeat).
* **Baseline** — the median over every *comparable* earlier run:
  same bench, same workload ``context``, and same machine fingerprint
  (unless ``match_machine=False``; cross-machine timings are not
  comparable and are skipped by default).  The median-of-k baseline
  means one historic outlier cannot shift the reference.
* **Verdict** — a regression needs BOTH ``candidate >
  baseline * (1 + rel_tolerance)`` AND ``candidate - baseline >=
  min_effect_ms``.  The relative test catches real slowdowns; the
  absolute floor keeps sub-millisecond jitter on tiny benches from
  flaking the gate.

Most metrics are timings, where **lower is better**.  Quality metrics
— recall fractions, shadow agreement, mean reciprocal rank — invert
that: the quality bench records them in the same ``timings_ms`` maps
(they are unitless fractions, but the history schema carries them
fine), and the gate recognises them by name
(:func:`metric_higher_is_better`) and flips into **floor** mode: a
regression needs BOTH ``candidate < baseline * (1 - rel_tolerance)``
AND ``baseline - candidate >= min_effect_floor``.  That is the recall
floor — a PR that keeps latency flat but drops a scenario's recall@10
by more than the tolerance fails CI exactly like a slowdown would.

A candidate with no comparable baseline is reported ``no-baseline``
and passes (day one, new machines, and scale changes must not block).
``inject_slowdown`` multiplies the candidate's timings — and
*divides* its higher-is-better metrics, degrading both directions at
once — before the comparison: the gate's own self-test, CI feeds a
synthetic 25% slowdown and asserts a non-zero exit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import median

from .history import BenchHistory

__all__ = ["GateConfig", "GateFinding", "GateReport", "check_history",
           "metric_higher_is_better"]

#: Metric-name markers that flip a comparison into floor mode
#: (higher is better).  Substring match on the metric name, so
#: per-cell names like ``tempo@0.5.recall_at_10`` qualify.
_FLOOR_MARKERS = ("recall_at", "agreement", "mrr")


def metric_higher_is_better(metric: str) -> bool:
    """True for quality metrics gated as floors (recall, MRR, ...)."""
    name = metric.lower()
    return any(marker in name for marker in _FLOOR_MARKERS)


@dataclass
class GateConfig:
    """Thresholds and matching policy of the regression gate.

    ``rel_tolerance=0.2`` fails >20% slowdowns; ``min_effect_ms``
    is the absolute floor below which a relative excess is treated as
    noise; ``min_effect_floor`` is its higher-is-better counterpart —
    the absolute drop (in the metric's own unit, e.g. 0.02 = two
    recall points) a quality metric must lose before the floor gate
    fires; ``candidate_runs`` medians the newest *k* runs into the
    candidate; ``match_machine=False`` also compares runs from
    different machine fingerprints (off by default for good reason).
    """

    rel_tolerance: float = 0.20
    min_effect_ms: float = 1.0
    min_effect_floor: float = 0.02
    candidate_runs: int = 1
    match_machine: bool = True
    inject_slowdown: float = 1.0
    metrics: tuple[str, ...] | None = None
    benches: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        if self.rel_tolerance < 0:
            raise ValueError(
                f"rel_tolerance must be >= 0, got {self.rel_tolerance}"
            )
        if self.min_effect_ms < 0:
            raise ValueError(
                f"min_effect_ms must be >= 0, got {self.min_effect_ms}"
            )
        if self.min_effect_floor < 0:
            raise ValueError(
                f"min_effect_floor must be >= 0, got {self.min_effect_floor}"
            )
        if self.candidate_runs < 1:
            raise ValueError(
                f"candidate_runs must be >= 1, got {self.candidate_runs}"
            )
        if self.inject_slowdown <= 0:
            raise ValueError(
                f"inject_slowdown must be > 0, got {self.inject_slowdown}"
            )


@dataclass
class GateFinding:
    """One (bench, metric) comparison and its verdict."""

    bench: str
    metric: str
    status: str                     # "ok" | "regression" | "no-baseline"
    candidate_ms: float
    baseline_ms: float | None = None
    baseline_runs: int = 0
    ratio: float | None = None

    def to_dict(self) -> dict:
        """The finding as a JSON-ready dict."""
        return {
            "bench": self.bench,
            "metric": self.metric,
            "status": self.status,
            "candidate_ms": self.candidate_ms,
            "baseline_ms": self.baseline_ms,
            "baseline_runs": self.baseline_runs,
            "ratio": self.ratio,
        }


@dataclass
class GateReport:
    """Every finding of one gate run, plus the overall verdict."""

    config: GateConfig
    findings: list[GateFinding] = field(default_factory=list)

    @property
    def regressions(self) -> list[GateFinding]:
        """The findings that failed the gate."""
        return [f for f in self.findings if f.status == "regression"]

    @property
    def ok(self) -> bool:
        """True when no metric regressed."""
        return not self.regressions

    def to_dict(self) -> dict:
        """The report as one JSON-ready document."""
        return {
            "ok": self.ok,
            "rel_tolerance": self.config.rel_tolerance,
            "min_effect_ms": self.config.min_effect_ms,
            "min_effect_floor": self.config.min_effect_floor,
            "inject_slowdown": self.config.inject_slowdown,
            "findings": [finding.to_dict() for finding in self.findings],
        }

    def summary(self) -> str:
        """A fixed-width per-metric verdict table for terminals."""
        lines = [
            f"{'bench':<14}{'metric':<26}{'baseline':>10}{'candidate':>11}"
            f"{'ratio':>8}  verdict",
        ]
        for f in self.findings:
            baseline = (f"{f.baseline_ms:>10.2f}" if f.baseline_ms is not None
                        else f"{'-':>10}")
            ratio = f"{f.ratio:>8.2f}" if f.ratio is not None else f"{'-':>8}"
            lines.append(
                f"{f.bench:<14}{f.metric:<26}{baseline}"
                f"{f.candidate_ms:>11.2f}{ratio}  {f.status}"
            )
        floors = sum(1 for f in self.regressions
                     if metric_higher_is_better(f.metric))
        verdict = "PASS" if self.ok else (
            f"FAIL ({len(self.regressions)} regression"
            f"{'s' if len(self.regressions) != 1 else ''} "
            f"beyond {self.config.rel_tolerance:.0%}"
            + (f", {floors} below a quality floor" if floors else "")
            + ")"
        )
        lines.append(verdict)
        return "\n".join(lines)


def _comparable(entry: dict, candidate: dict, match_machine: bool) -> bool:
    if entry["context"] != candidate["context"]:
        return False
    if match_machine:
        return (entry["machine"].get("fingerprint")
                == candidate["machine"].get("fingerprint"))
    return True


def check_history(
    history: BenchHistory | list[dict],
    config: GateConfig | None = None,
) -> GateReport:
    """Gate the newest run of every bench against its history.

    *history* is a :class:`BenchHistory` or a raw entry list (file
    order = time order).  Per bench: the newest ``candidate_runs``
    comparable entries form the candidate (median per metric); every
    comparable entry before them forms the baseline (median per
    metric); verdicts follow the module docstring.  Benches and
    metrics may be restricted through the config.
    """
    config = config or GateConfig()
    entries = (history.entries() if isinstance(history, BenchHistory)
               else list(history))
    report = GateReport(config=config)
    benches: list[str] = []
    for entry in entries:
        if entry["bench"] not in benches:
            benches.append(entry["bench"])
    if config.benches is not None:
        benches = [bench for bench in benches if bench in config.benches]

    for bench in benches:
        runs = [entry for entry in entries if entry["bench"] == bench]
        newest = runs[-1]
        comparable = [entry for entry in runs
                      if _comparable(entry, newest, config.match_machine)]
        cand_runs = comparable[-config.candidate_runs:]
        base_runs = comparable[:-len(cand_runs)] if cand_runs else []
        metrics = list(newest["timings_ms"])
        if config.metrics is not None:
            metrics = [name for name in metrics if name in config.metrics]
        for metric in metrics:
            cand_values = [run["timings_ms"][metric] for run in cand_runs
                           if metric in run["timings_ms"]]
            if not cand_values:  # pragma: no cover - newest has metric
                continue
            # The synthetic-slowdown self-test degrades in whichever
            # direction the metric gates: timings get slower (×),
            # quality floors get lower (÷).
            if metric_higher_is_better(metric):
                candidate_ms = median(cand_values) / config.inject_slowdown
            else:
                candidate_ms = median(cand_values) * config.inject_slowdown
            base_values = [run["timings_ms"][metric] for run in base_runs
                           if metric in run["timings_ms"]]
            if not base_values:
                ratio = None
                if config.inject_slowdown != 1.0:
                    ratio = (1.0 / config.inject_slowdown
                             if metric_higher_is_better(metric)
                             else config.inject_slowdown)
                report.findings.append(GateFinding(
                    bench=bench, metric=metric, status="no-baseline",
                    candidate_ms=candidate_ms, ratio=ratio,
                ))
                # The injected-slowdown self-test must bite even on a
                # single-entry history: compare the scaled candidate
                # against its own unscaled reading.
                if config.inject_slowdown != 1.0:
                    report.findings[-1] = _verdict(
                        bench, metric, candidate_ms,
                        median(cand_values), len(cand_runs), config,
                    )
                continue
            report.findings.append(_verdict(
                bench, metric, candidate_ms, median(base_values),
                len(base_values), config,
            ))
    return report


def _verdict(bench: str, metric: str, candidate_ms: float,
             baseline_ms: float, baseline_runs: int,
             config: GateConfig) -> GateFinding:
    ratio = candidate_ms / baseline_ms if baseline_ms > 0 else float("inf")
    if metric_higher_is_better(metric):
        # Floor mode: the metric regressed by *falling*.
        deficit = baseline_ms - candidate_ms
        regressed = (
            candidate_ms < baseline_ms * (1.0 - config.rel_tolerance)
            and deficit >= config.min_effect_floor
        )
    else:
        excess_ms = candidate_ms - baseline_ms
        regressed = (
            candidate_ms > baseline_ms * (1.0 + config.rel_tolerance)
            and excess_ms >= config.min_effect_ms
        )
    return GateFinding(
        bench=bench, metric=metric,
        status="regression" if regressed else "ok",
        candidate_ms=candidate_ms, baseline_ms=baseline_ms,
        baseline_runs=baseline_runs, ratio=ratio,
    )
