"""Continuous performance: bench history, regression gates, replay.

The perf subsystem closes the loop the observability layer opened:
PR-over-PR benchmark numbers become *decisions* instead of snapshots.

* :mod:`repro.perf.history` — every benchmark run appends one record
  (machine fingerprint, git SHA, timestamp, timings, workload context)
  to ``BENCH_history.jsonl``, the append-only trajectory behind the
  one-shot ``BENCH_*.json`` files.
* :mod:`repro.perf.regress` — the statistical regression gate: a
  candidate run is compared against the median of its matching
  baseline runs (same bench, same workload context, same machine
  unless told otherwise) with a relative tolerance *and* a minimum
  absolute effect, so timer noise cannot flake CI while a real
  cascade slowdown cannot hide.
* :mod:`repro.perf.replay` — deterministic workload replay: the query
  log captured by the observability layer (optionally gated to slow
  queries) is re-executed through :class:`~repro.engine.QueryEngine`
  on every DTW backend, serial and batched, asserting distance and
  survivor parity with the recorded run.

CLI surface: ``repro perf check`` / ``repro perf record`` /
``repro perf replay`` (see ``repro perf --help``).
"""

from .history import (
    BENCH_HISTORY_SCHEMA,
    BenchHistory,
    git_sha,
    machine_fingerprint,
    make_entry,
)
from .regress import (
    GateConfig,
    GateFinding,
    GateReport,
    check_history,
    metric_higher_is_better,
)
from .replay import (
    ReplayCheck,
    ReplayReport,
    WorkloadRecorder,
    load_workload,
    replay_workload,
)

__all__ = [
    "BENCH_HISTORY_SCHEMA",
    "BenchHistory",
    "machine_fingerprint",
    "git_sha",
    "make_entry",
    "GateConfig",
    "GateFinding",
    "GateReport",
    "check_history",
    "metric_higher_is_better",
    "WorkloadRecorder",
    "load_workload",
    "replay_workload",
    "ReplayCheck",
    "ReplayReport",
]
