"""Deterministic workload replay from a captured query log.

When the observability layer flags a slow query, the next question is
always "can we reproduce it?".  This module answers yes by
construction: the :class:`WorkloadRecorder` sink captures each served
query verbatim — the raw input series, the query parameters, and the
exact answer (ids and distances) — as one JSONL record keyed by the
engine's stable ``query_id`` (the same id stamped on the query's root
trace span, so a span in ``trace.jsonl`` links to its workload line).
:func:`replay_workload` then re-executes the records through a
:class:`~repro.engine.QueryEngine` and *verifies* rather than trusts:
every replayed distance must match the recording to ``atol`` and every
survivor set must be identical, on every DTW backend, through both the
serial (``range_search``/``knn``) and batched-parallel
(``range_search_many``/``knn_many``) serving paths.

A parity failure therefore isolates the culprit precisely: recorded ≠
serial-vectorized is an engine change, vectorized ≠ scalar is a kernel
change, serial ≠ ``*_many`` is a concurrency bug.

Capture is wired through
``Observability.to_files(workload_out=...)`` — the CLI's
``repro query --workload-out queries.jsonl`` — and respects
``--slow-query-ms``: with a threshold, only slow queries are captured,
which makes the log a deterministic repro kit for exactly the queries
worth debugging.  Replay runs via ``repro perf replay``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "WORKLOAD_SCHEMA",
    "WorkloadRecorder",
    "load_workload",
    "ReplayCheck",
    "ReplayReport",
    "replay_workload",
]

#: Version tag of the workload-record schema.
WORKLOAD_SCHEMA = 1

#: Keys every workload record must carry to be replayable.
REQUIRED_KEYS = ("schema", "query_id", "kind", "params", "query", "results")


class WorkloadRecorder:
    """A workload sink writing one JSON record per captured query.

    Plug into ``Observability(workload_sink=...)`` (or let
    ``Observability.to_files(workload_out=...)`` build one).  Like the
    span exporter, it appends under the facade's locking discipline,
    so the ``*_many`` thread pool may share it.
    """

    def __init__(self, path, append: bool = False) -> None:
        self.path = path
        self._handle = open(path, "a" if append else "w", encoding="utf-8")

    def __call__(self, record: dict) -> None:
        self._handle.write(json.dumps(record) + "\n")
        self._handle.flush()

    def close(self) -> None:
        """Flush and close the underlying file."""
        if not self._handle.closed:
            self._handle.close()


def load_workload(path, stats=None) -> list[dict]:
    """Read workload records from JSONL, skipping damaged lines.

    *stats*, when given, is a :class:`~repro.obs.analysis.TraceReadStats`
    (or anything with ``lines``/``spans``/``bad_lines`` counters) that
    receives the read accounting — same tolerance contract as the
    trace reader: truncated or non-JSON lines never abort a replay of
    the intact records around them.
    """
    records = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            if stats is not None:
                stats.lines += 1
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if stats is not None:
                    stats.bad_lines += 1
                continue
            if (not isinstance(record, dict)
                    or any(key not in record for key in REQUIRED_KEYS)):
                if stats is not None:
                    stats.bad_lines += 1
                continue
            if stats is not None:
                stats.spans += 1
            records.append(record)
    return records


@dataclass
class ReplayCheck:
    """Parity verdict of one recorded query on one backend and path."""

    query_id: str
    kind: str
    backend: str
    mode: str                     # "serial" | "many"
    ok: bool
    detail: str = ""

    def to_dict(self) -> dict:
        """The check as a JSON-ready dict."""
        return {
            "query_id": self.query_id,
            "kind": self.kind,
            "backend": self.backend,
            "mode": self.mode,
            "ok": self.ok,
            "detail": self.detail,
        }


@dataclass
class ReplayReport:
    """Every parity check of one replay run."""

    checks: list[ReplayCheck] = field(default_factory=list)

    @property
    def failures(self) -> list[ReplayCheck]:
        """The checks that found a mismatch."""
        return [check for check in self.checks if not check.ok]

    @property
    def ok(self) -> bool:
        """True when every replayed query matched its recording."""
        return not self.failures

    def to_dict(self) -> dict:
        """The report as one JSON-ready document."""
        return {
            "ok": self.ok,
            "checks": [check.to_dict() for check in self.checks],
        }

    def summary(self) -> str:
        """A per-backend/mode pass-fail summary for terminals."""
        by_group: dict[tuple, list[ReplayCheck]] = {}
        for check in self.checks:
            by_group.setdefault((check.backend, check.mode), []).append(check)
        lines = []
        for (backend, mode), group in sorted(by_group.items()):
            bad = [check for check in group if not check.ok]
            verdict = "ok" if not bad else f"{len(bad)} MISMATCH"
            lines.append(
                f"{backend:<12}{mode:<8}{len(group):>4} queries  {verdict}"
            )
        for check in self.failures:
            lines.append(
                f"  mismatch {check.query_id} ({check.kind}, "
                f"{check.backend}/{check.mode}): {check.detail}"
            )
        lines.append("replay PARITY OK" if self.ok
                     else f"replay FAILED ({len(self.failures)} mismatches)")
        return "\n".join(lines)


def _param_of(record: dict):
    params = record["params"]
    if record["kind"] == "range":
        return float(params["epsilon"])
    return int(params["k"])


def _compare(record: dict, got, atol: float) -> tuple[bool, str]:
    """Ids must be identical, distances equal to *atol*."""
    want = record["results"]
    got_ids = [item for item, _ in got]
    want_ids = [item for item, _ in want]
    if got_ids != want_ids:
        missing = [item for item in want_ids if item not in got_ids]
        extra = [item for item in got_ids if item not in want_ids]
        if missing or extra:
            return False, (f"survivor sets differ "
                           f"(missing={missing[:5]}, extra={extra[:5]})")
        return False, f"result order differs: {want_ids[:5]} vs {got_ids[:5]}"
    if want:
        diff = max(abs(float(got_d) - float(want_d))
                   for (_, got_d), (_, want_d) in zip(got, want))
        if diff > atol:
            return False, f"max distance diff {diff:.3e} > atol {atol:.0e}"
    return True, ""


def replay_workload(
    engine_factory,
    records: list[dict],
    *,
    backends=("vectorized", "scalar"),
    modes=("serial", "many"),
    workers: int | None = None,
    atol: float = 1e-9,
) -> ReplayReport:
    """Re-execute captured queries and verify distance/survivor parity.

    *engine_factory* maps a backend name to a query engine (e.g.
    ``lambda b: index.engine(dtw_backend=b)`` or a
    :class:`~repro.engine.QueryEngine` constructor closure).  Per
    backend, ``serial`` replays each record through
    ``range_search``/``knn`` and ``many`` groups records with equal
    parameters through ``range_search_many``/``knn_many`` (*workers*
    threads) — so the parallel serving path is exercised against the
    same ground truth.  Every record contributes one
    :class:`ReplayCheck` per (backend, mode).
    """
    report = ReplayReport()
    if not records:
        return report
    for backend in backends:
        engine = engine_factory(backend)
        if "serial" in modes:
            for record in records:
                query = np.asarray(record["query"], dtype=np.float64)
                if record["kind"] == "range":
                    got, _ = engine.range_search(query, _param_of(record))
                else:
                    got, _ = engine.knn(query, _param_of(record))
                ok, detail = _compare(record, got, atol)
                report.checks.append(ReplayCheck(
                    query_id=record["query_id"], kind=record["kind"],
                    backend=backend, mode="serial", ok=ok, detail=detail,
                ))
        if "many" in modes:
            groups: dict[tuple, list[dict]] = {}
            for record in records:
                groups.setdefault(
                    (record["kind"], _param_of(record)), []
                ).append(record)
            for (kind, param), group in groups.items():
                queries = [np.asarray(record["query"], dtype=np.float64)
                           for record in group]
                if kind == "range":
                    all_got, _ = engine.range_search_many(
                        queries, param, workers=workers
                    )
                else:
                    all_got, _ = engine.knn_many(
                        queries, param, workers=workers
                    )
                for record, got in zip(group, all_got):
                    ok, detail = _compare(record, got, atol)
                    report.checks.append(ReplayCheck(
                        query_id=record["query_id"], kind=kind,
                        backend=backend, mode="many", ok=ok, detail=detail,
                    ))
    return report
