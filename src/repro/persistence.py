"""Persistence: save and load warping indexes and melody corpora.

A :class:`~repro.index.gemini.WarpingIndex` round-trips through a
single ``.npz`` file holding the normalised data matrix, the ids, and
a JSON configuration blob (the envelope-transform spec is serialised
by kind, with an explicit coefficient matrix for custom sign-split
transforms).  Melody corpora round-trip through a directory of
Standard MIDI Files plus a manifest — exercising the MIDI substrate
the way the paper's own database-building step did.
"""

from __future__ import annotations

import json
import os
from collections.abc import Sequence

import numpy as np

from .core.envelope_transforms import (
    EnvelopeTransform,
    KeoghPAAEnvelopeTransform,
    NewPAAEnvelopeTransform,
    SignSplitEnvelopeTransform,
)
from .core.normal_form import NormalForm
from .core.transforms import LinearTransform
from .index.gemini import WarpingIndex
from .index.subsequence import SubsequenceIndex
from .music.melody import Melody
from .music.midi import MidiFile

__all__ = [
    "save_index",
    "load_index",
    "save_subsequence_index",
    "load_subsequence_index",
    "save_index_to_store",
    "load_index_from_store",
    "load_subsequence_index_from_store",
    "save_corpus",
    "load_corpus",
    "melodies_from_midi_directory",
]

_FORMAT_VERSION = 1


def _transform_spec(env_transform: EnvelopeTransform) -> tuple[dict, np.ndarray | None]:
    """Serialise an envelope transform to (json-able spec, matrix)."""
    n = env_transform.input_length
    if isinstance(env_transform, NewPAAEnvelopeTransform):
        return {"kind": "new_paa", "input_length": n,
                "n_frames": env_transform.output_dim}, None
    if isinstance(env_transform, KeoghPAAEnvelopeTransform):
        return {"kind": "keogh_paa", "input_length": n,
                "n_frames": env_transform.output_dim}, None
    if isinstance(env_transform, SignSplitEnvelopeTransform):
        return {"kind": "sign_split", "input_length": n,
                "name": env_transform.name}, env_transform.transform.matrix.copy()
    raise TypeError(
        f"cannot serialise envelope transform of type "
        f"{type(env_transform).__name__}"
    )


def _transform_from_spec(spec: dict, matrix) -> EnvelopeTransform:
    kind = spec["kind"]
    if kind == "new_paa":
        return NewPAAEnvelopeTransform(spec["input_length"], spec["n_frames"])
    if kind == "keogh_paa":
        return KeoghPAAEnvelopeTransform(spec["input_length"], spec["n_frames"])
    if kind == "sign_split":
        if matrix is None:
            raise ValueError("sign_split spec requires a stored matrix")
        return SignSplitEnvelopeTransform(
            LinearTransform(matrix, name=spec.get("name")), name=spec.get("name")
        )
    raise ValueError(f"unknown envelope transform kind {kind!r}")


def save_index(index: WarpingIndex, path: str | os.PathLike) -> None:
    """Write a warping index to ``path`` (``.npz``).

    The normalised series, ids, and full configuration are stored; the
    multidimensional index itself is rebuilt on load (bulk loading is
    fast and avoids serialising tree internals).
    """
    spec, matrix = _transform_spec(index.env_transform)
    config = {
        "version": _FORMAT_VERSION,
        "delta": index.delta,
        "normal_form": {
            "length": index.normal_form.length,
            "shift": index.normal_form.shift,
            "scale": index.normal_form.scale,
        },
        "index_kind": index.index_kind,
        "env_transform": spec,
        "ids": list(index.ids),
        # Serving knobs: pure performance configuration (results are
        # identical either way), but a restarted service must behave
        # identically to the one that saved the file.
        "dtw_backend": index.dtw_backend,
        "workers": index.workers,
        "shards": index.shards,
    }
    arrays = {
        "data": index._data,
        "config": np.frombuffer(json.dumps(config).encode(), dtype=np.uint8),
    }
    if matrix is not None:
        arrays["transform_matrix"] = matrix
    np.savez_compressed(path, **arrays)


def load_index(path: str | os.PathLike) -> WarpingIndex:
    """Read a warping index written by :func:`save_index`."""
    with np.load(path) as stored:
        config = json.loads(bytes(stored["config"]).decode())
        if config.get("version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported index file version {config.get('version')!r}"
            )
        data = stored["data"]
        matrix = stored["transform_matrix"] if "transform_matrix" in stored else None
    nf_cfg = config["normal_form"]
    ids = config["ids"]
    return WarpingIndex(
        list(data),
        delta=config["delta"],
        env_transform=_transform_from_spec(config["env_transform"], matrix),
        normal_form=NormalForm(
            length=nf_cfg["length"], shift=nf_cfg["shift"], scale=nf_cfg["scale"]
        ),
        index_kind=config["index_kind"],
        ids=ids,
        # Older files (same format version) predate the serving knobs;
        # .get keeps them loadable with the constructor defaults.
        dtw_backend=config.get("dtw_backend"),
        workers=config.get("workers"),
        shards=config.get("shards"),
    )


def save_subsequence_index(
    index: SubsequenceIndex, path: str | os.PathLike
) -> None:
    """Write a subsequence index to ``path`` (``.npz``).

    The original sequences (ragged) are stored concatenated with their
    offsets; windows are re-extracted on load, so the file stays small
    and the window index is rebuilt with fast bulk loading.
    """
    spec, matrix = _transform_spec(index.env_transform)
    sequences = index._sequences
    if sequences is None:
        raise ValueError(
            "this index is store-backed (SubsequenceIndex.from_store) and "
            "does not retain raw sequences; its columnar store directory "
            "is already its persistent form"
        )
    flat = np.concatenate(sequences) if sequences else np.zeros(0)
    offsets = np.cumsum([0] + [seq.size for seq in sequences])
    window_lengths = sorted({length for *_, length in index._windows})
    strides = sorted(
        {
            b[1] - a[1]
            for a, b in zip(index._windows, index._windows[1:])
            if a[0] == b[0] and a[2] == b[2] and b[1] > a[1]
        }
    )
    stride = strides[0] if strides else 1
    config = {
        "version": _FORMAT_VERSION,
        "kind": "subsequence",
        "delta": index.delta,
        "normal_form": {
            "length": index.normal_form.length,
            "shift": index.normal_form.shift,
            "scale": index.normal_form.scale,
        },
        "window_lengths": [int(w) for w in window_lengths],
        "stride": int(stride),
        "env_transform": spec,
        "ids": list(index.ids),
    }
    arrays = {
        "flat": flat,
        "offsets": offsets,
        "config": np.frombuffer(json.dumps(config).encode(), dtype=np.uint8),
    }
    if matrix is not None:
        arrays["transform_matrix"] = matrix
    np.savez_compressed(path, **arrays)


def load_subsequence_index(path: str | os.PathLike) -> SubsequenceIndex:
    """Read a subsequence index written by :func:`save_subsequence_index`."""
    with np.load(path) as stored:
        config = json.loads(bytes(stored["config"]).decode())
        if config.get("version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported index file version {config.get('version')!r}"
            )
        if config.get("kind") != "subsequence":
            raise ValueError("not a subsequence index file")
        flat = stored["flat"]
        offsets = stored["offsets"]
        matrix = stored["transform_matrix"] if "transform_matrix" in stored else None
    sequences = [
        flat[offsets[i] : offsets[i + 1]] for i in range(offsets.size - 1)
    ]
    nf_cfg = config["normal_form"]
    return SubsequenceIndex(
        sequences,
        window_lengths=tuple(config["window_lengths"]),
        stride=config["stride"],
        delta=config["delta"],
        env_transform=_transform_from_spec(config["env_transform"], matrix),
        normal_form=NormalForm(
            length=nf_cfg["length"], shift=nf_cfg["shift"], scale=nf_cfg["scale"]
        ),
        ids=config["ids"],
    )


def save_index_to_store(
    index: WarpingIndex,
    root: str | os.PathLike,
    *,
    generation: int | None = None,
    activate: bool = True,
):
    """Write a warping index's corpus as a columnar-store generation.

    Unlike :class:`~repro.ingest.StreamingIndexBuilder` this does *not*
    re-normalise anything: the index's already-normalised rows are
    quantised to float32 and written as-is, with GEMINI features
    recomputed in float64 *from the quantised rows* so the stored
    ``feature_margin`` covers every row (the same soundness contract the
    builder keeps).  The resulting generation round-trips through
    :func:`load_index_from_store` / ``WarpingIndex.from_store``.

    Returns the sealed :class:`~repro.store.CorpusStore`.
    """
    from .core.envelope import warping_width_to_k
    from .ingest.builder import batch_envelope, transform_config
    from .store import GenerationWriter, activate_generation, list_generations

    if generation is None:
        existing = list_generations(root)
        generation = (existing[-1] + 1) if existing else 0
    data32 = np.ascontiguousarray(index._data, dtype=np.float32)
    n = data32.shape[1]
    feats64 = index.env_transform.transform.transform_batch(
        data32.astype(np.float64)
    )
    feats32 = feats64.astype(np.float32)
    margin = float(np.abs(feats64 - feats32).max()) if data32.size else 0.0
    band = warping_width_to_k(index.delta, n)
    env_lower, env_upper = batch_envelope(data32, band)
    meta = np.empty((data32.shape[0], 3), dtype=np.int64)
    meta[:, 0] = np.arange(data32.shape[0])
    meta[:, 1] = 0
    meta[:, 2] = n
    config = {
        "delta": index.delta,
        "normal_form": {
            "length": index.normal_form.length,
            "shift": index.normal_form.shift,
            "scale": index.normal_form.scale,
        },
        "env_transform": transform_config(index.env_transform),
        "capacity": index._capacity,
    }
    writer = GenerationWriter(
        root, generation,
        normal_length=n,
        n_features=feats32.shape[1],
        metric=index.metric,
        kind="melody",
        config=config,
    )
    writer.add_ids(index.ids)
    writer.append(data32, feats32, env_lower, env_upper, meta)
    store = writer.seal(feature_margin=margin)
    if activate:
        activate_generation(root, generation)
    return store


def load_index_from_store(
    root: str | os.PathLike, *, generation: int | None = None, **kwargs
) -> WarpingIndex:
    """Open a store generation as a :class:`WarpingIndex`.

    ``generation=None`` follows the store's ``CURRENT`` pointer;
    keyword arguments pass through to ``WarpingIndex.from_store``
    (``index_kind``, ``dtw_backend``, ``workers``, ``shards``, …).
    """
    from .store import CorpusStore

    store = CorpusStore.open(root, generation=generation)
    return WarpingIndex.from_store(store, **kwargs)


def load_subsequence_index_from_store(
    root: str | os.PathLike, *, generation: int | None = None, **kwargs
) -> SubsequenceIndex:
    """Open a subsequence-kind store generation as a
    :class:`SubsequenceIndex` (kwargs pass through to ``from_store``)."""
    from .store import CorpusStore

    store = CorpusStore.open(root, generation=generation)
    return SubsequenceIndex.from_store(store, **kwargs)


def save_corpus(melodies: Sequence[Melody], directory: str | os.PathLike) -> None:
    """Write melodies as Standard MIDI Files plus a JSON manifest."""
    os.makedirs(directory, exist_ok=True)
    manifest = []
    for i, melody in enumerate(melodies):
        filename = f"melody_{i:05d}.mid"
        with open(os.path.join(directory, filename), "wb") as handle:
            handle.write(MidiFile.from_melody(melody).to_bytes())
        manifest.append({"file": filename, "name": melody.name})
    with open(os.path.join(directory, "manifest.json"), "w") as handle:
        json.dump({"version": _FORMAT_VERSION, "melodies": manifest}, handle,
                  indent=2)


def melodies_from_midi_directory(
    directory: str | os.PathLike,
    *,
    on_error: str = "skip",
) -> list[Melody]:
    """Extract one melody per ``.mid``/``.midi`` file of a directory.

    This is the paper's database-building step ("we extracted notes
    from the melody channel of MIDI files we collected from the
    Internet"): files are scanned in sorted order, the busiest channel
    of each is flattened to a monophonic melody, and the file stem
    becomes the melody name.

    Parameters
    ----------
    directory:
        Directory containing MIDI files (non-MIDI files are ignored).
    on_error:
        ``"skip"`` (default) drops unparseable files — Internet MIDI
        is messy; ``"raise"`` propagates the first failure.

    Raises
    ------
    ValueError
        If no melody could be extracted at all, or *on_error* is
        ``"raise"`` and a file fails.
    """
    if on_error not in ("skip", "raise"):
        raise ValueError(f"on_error must be 'skip' or 'raise', got {on_error!r}")
    melodies: list[Melody] = []
    for name in sorted(os.listdir(directory)):
        if not name.lower().endswith((".mid", ".midi")):
            continue
        path = os.path.join(directory, name)
        try:
            with open(path, "rb") as handle:
                midi = MidiFile.from_bytes(handle.read())
            melodies.append(midi.to_melody(name=os.path.splitext(name)[0]))
        except ValueError:
            if on_error == "raise":
                raise
    if not melodies:
        raise ValueError(f"no usable MIDI melodies found in {directory}")
    return melodies


def load_corpus(directory: str | os.PathLike) -> list[Melody]:
    """Read a corpus written by :func:`save_corpus`.

    Note: MIDI quantises pitches to integers, so fractional (hummed)
    pitches do not survive the round trip — corpora are score data.
    """
    with open(os.path.join(directory, "manifest.json")) as handle:
        manifest = json.load(handle)
    if manifest.get("version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported corpus version {manifest.get('version')!r}"
        )
    melodies = []
    for entry in manifest["melodies"]:
        with open(os.path.join(directory, entry["file"]), "rb") as handle:
            midi = MidiFile.from_bytes(handle.read())
        melodies.append(midi.to_melody(name=entry["name"]))
    return melodies
