"""Command-line interface for the query-by-humming system.

Subcommands mirror a real deployment's lifecycle::

    repro corpus  --songs 50 --out corpus/          # build a MIDI corpus
    repro index   --corpus corpus/ --out index.npz  # build the warping index
    repro hum     --corpus corpus/ --melody 123 --out hum.npy
    repro query   --index index.npz --hum hum.npy -k 10
    repro demo                                      # end-to-end in memory

Hum inputs to ``query`` may be ``.npy`` pitch-series files (MIDI pitch
per 10 ms frame, as the pitch tracker emits) or ``.mid`` files.

The telemetry loop closes through two more groups::

    repro obs report   --trace trace.jsonl          # trace analytics
    repro perf record  --bench cascade --json BENCH_cascade.json
    repro perf check                                # regression gate
    repro perf replay  --workload wl.jsonl --index index.npz

And the serving layer::

    repro serve        --index index.npz --hum hum.npy --clients 8
    repro bench-serve  --quick                      # batching vs direct
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def _cmd_corpus(args) -> int:
    from .music.corpus import generate_corpus, segment_corpus
    from .persistence import save_corpus

    songs = generate_corpus(args.songs, seed=args.seed)
    melodies = segment_corpus(songs, per_song=args.per_song, seed=args.seed)
    save_corpus(melodies, args.out)
    print(f"wrote {len(melodies)} melodies from {args.songs} songs to {args.out}")
    return 0


def _cmd_index(args) -> int:
    from .core.envelope_transforms import (
        KeoghPAAEnvelopeTransform,
        NewPAAEnvelopeTransform,
    )
    from .core.normal_form import NormalForm
    from .index.gemini import WarpingIndex
    from .persistence import load_corpus, save_index

    if args.out is None and args.store_dir is None:
        print("error: need --out and/or --store-dir", file=sys.stderr)
        return 2
    melodies = load_corpus(args.corpus)
    series = [m.to_time_series(8) for m in melodies]
    ids = [m.name or str(i) for i, m in enumerate(melodies)]
    length = args.normal_length
    if args.transform == "new_paa":
        env_t = NewPAAEnvelopeTransform(length, args.features)
    else:
        env_t = KeoghPAAEnvelopeTransform(length, args.features)
    if args.store_dir is not None:
        # The streaming bulk-load path: one pass, bounded staging
        # buffers, columnar float32 generation on disk.
        from .ingest import StreamingIndexBuilder

        builder = StreamingIndexBuilder(
            args.store_dir,
            kind="melody",
            delta=args.delta,
            normal_form=NormalForm(length=length),
            env_transform=env_t,
            memory_budget_mb=args.memory_budget_mb,
        )
        store, report = builder.build(series, ids)
        print(f"stored {report.rows} melodies -> {args.store_dir} "
              f"(generation {report.generation}, "
              f"{report.rows_per_s:.0f} rows/s, "
              f"{report.flushes} flushes within "
              f"{report.budget_bytes >> 20} MiB)")
        if args.out is None:
            return 0
    index = WarpingIndex(
        series,
        delta=args.delta,
        env_transform=env_t,
        normal_form=NormalForm(length=length),
        index_kind=args.backend,
        ids=ids,
    )
    save_index(index, args.out)
    print(f"indexed {len(index)} melodies (delta={args.delta}, "
          f"{args.transform}, {args.backend}) -> {args.out}")
    return 0


def _cmd_ingest(args) -> int:
    """Init-or-append: stream a corpus into a columnar store.

    With no existing generation the store is initialised from the
    configuration flags; with one, the corpus is appended as an
    incremental generation inheriting the live segments (the offline
    twin of the background ingest worker).
    """
    from .ingest import StreamingIndexBuilder
    from .persistence import load_corpus
    from .store import CorpusStore, current_generation, prune_generations

    melodies = load_corpus(args.corpus)
    series = [m.to_time_series(8) for m in melodies]
    ids = [m.name or str(i) for i, m in enumerate(melodies)]
    if args.id_prefix:
        ids = [f"{args.id_prefix}{item}" for item in ids]
    base = None
    if current_generation(args.store_dir) is not None:
        base = CorpusStore.open(args.store_dir)
        builder = StreamingIndexBuilder.for_store(
            base, memory_budget_mb=args.memory_budget_mb
        )
    else:
        from .core.normal_form import NormalForm

        builder = StreamingIndexBuilder(
            args.store_dir,
            kind="melody",
            delta=args.delta,
            normal_form=NormalForm(length=args.normal_length),
            n_features=args.features,
            memory_budget_mb=args.memory_budget_mb,
        )
    store, report = builder.build(
        series, ids, base=base, activate=not args.no_activate
    )
    verb = "appended" if base is not None else "initialised"
    new_rows = report.rows - (base.rows if base is not None else 0)
    print(f"{verb} {new_rows} melodies -> {args.store_dir} "
          f"(generation {report.generation}, {report.rows} rows total, "
          f"{report.rows_per_s:.0f} rows/s, feature margin "
          f"{report.feature_margin:.3g})")
    if args.keep is not None:
        removed = prune_generations(args.store_dir, keep=args.keep)
        if removed:
            print(f"pruned generations: "
                  f"{', '.join(str(g) for g in removed)}")
    return 0


def _open_index(args):
    """Resolve --index (.npz) vs --store-dir (columnar store) inputs."""
    if (args.index is None) == (getattr(args, "store_dir", None) is None):
        raise SystemExit("error: need exactly one of --index / --store-dir")
    if args.index is not None:
        from .persistence import load_index

        return load_index(args.index)
    from .persistence import load_index_from_store

    return load_index_from_store(args.store_dir)


def _load_hum(path: str) -> np.ndarray:
    if path.endswith(".npy"):
        return np.load(path)
    if path.endswith(".mid"):
        from .music.midi import MidiFile

        with open(path, "rb") as handle:
            melody = MidiFile.from_bytes(handle.read()).to_melody()
        return melody.to_time_series(8).astype(float)
    raise ValueError(f"unsupported hum input {path!r} (want .npy or .mid)")


def _print_hits(results) -> None:
    for rank, (name, dist) in enumerate(results, start=1):
        print(f"{rank:3d}. {name}  (DTW distance {dist:.3f})")


def _emit_stats_json(payload: dict, dest: str, info) -> None:
    """Write the machine-readable query record to *dest* (``-`` = stdout)."""
    import json

    text = json.dumps(payload, indent=2, sort_keys=True)
    if dest == "-":
        print(text)
    else:
        with open(dest, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote stats to {dest}", file=info)


def _cmd_query(args) -> int:
    obs = None
    if (args.trace_out or args.metrics_out or args.workload_out
            or args.slow_query_ms is not None):
        from .obs import Observability

        def on_slow(record):
            print(f"slow query: {record['duration_ms']:.1f} ms "
                  f"({record['refined']} refined of "
                  f"{record['corpus_size']})", file=sys.stderr)

        obs = Observability.to_files(
            trace_out=args.trace_out,
            metrics_out=args.metrics_out,
            workload_out=args.workload_out,
            slow_query_ms=args.slow_query_ms,
            on_slow=on_slow if args.slow_query_ms is not None else None,
            trace_append=args.trace_append,
        )
    # With --stats-json, stdout is reserved for results (rows, or the
    # JSON document itself with ``-``); diagnostics move to stderr.
    stats_json = args.stats_json
    info = sys.stderr if stats_json is not None else sys.stdout
    router = None
    try:
        index = _open_index(args)
        if obs is not None:
            index.set_observability(obs)
        if args.dtw_backend:
            index.dtw_backend = args.dtw_backend
        hums = [_load_hum(path) for path in args.hum]
        shards = args.shards if args.shards is not None else index.shards
        if shards is not None and shards > 1:
            # Multi-process serving: the corpus is partitioned across
            # worker processes and every query fans out; answers (and
            # merged cascade stats) are identical to the in-process
            # path, but the kernel work escapes the GIL.
            from .shard import ShardRouter

            router = ShardRouter.from_index(index, shards=shards)
        # The cascade engine is the instrumented path: stats flags need
        # its counters, and observability needs its span tree.  The
        # shard router only speaks cascade.
        want_cascade = (args.stats or stats_json is not None
                        or obs is not None or router is not None)
        if len(hums) > 1:
            # Batch serving: shard the hums across a thread pool (or
            # the worker processes) and answer each through the filter
            # cascade (identical to one-at-a-time).
            if router is not None:
                per_hum, cascade = router.knn_many(
                    [index.normal_form.apply(hum) for hum in hums],
                    args.k,
                )
            else:
                per_hum, cascade = index.cascade_knn_query_many(
                    hums, args.k, workers=args.workers
                )
            print(f"db={len(index)}  hums={len(hums)}", file=info)
            if stats_json != "-":
                for path, results in zip(args.hum, per_hum):
                    print(f"\n{path}:")
                    _print_hits(results)
            if args.stats:
                print("\nmerged filter cascade:", file=info)
                print(cascade.summary(), file=info)
            if stats_json is not None:
                payload = {
                    "db": len(index),
                    "k": args.k,
                    "hums": list(args.hum),
                    "results": {
                        path: [[name, dist] for name, dist in results]
                        for path, results in zip(args.hum, per_hum)
                    },
                    "cascade": cascade.to_dict(),
                }
                _emit_stats_json(payload, stats_json, info)
            return 0
        hum = hums[0]
        if want_cascade:
            if router is not None:
                results, cascade = router.knn(
                    index.normal_form.apply(hum), args.k
                )
            else:
                results, cascade = index.cascade_knn_query(hum, args.k)
            if args.stats:
                print(f"db={len(index)}  filter cascade:", file=info)
                print(cascade.summary(), file=info)
            else:
                print(f"db={len(index)}  "
                      f"pruned={cascade.pruned_total}  "
                      f"refined={cascade.dtw_computations}", file=info)
        else:
            cascade = None
            results, stats = index.knn_query(hum, args.k)
            print(f"db={len(index)}  candidates={stats.candidates}  "
                  f"pages={stats.page_accesses}  "
                  f"refined={stats.dtw_computations}", file=info)
        if stats_json != "-":
            _print_hits(results)
        if stats_json is not None:
            payload = {
                "db": len(index),
                "k": args.k,
                "hums": list(args.hum),
                "results": [[name, dist] for name, dist in results],
                "cascade": cascade.to_dict(),
            }
            _emit_stats_json(payload, stats_json, info)
        return 0
    finally:
        if router is not None:
            router.close()
        if obs is not None:
            obs.close()
            if args.trace_out:
                print(f"wrote trace spans to {args.trace_out}", file=info)
            if args.metrics_out:
                print(f"wrote metrics snapshot to {args.metrics_out}",
                      file=info)
            if args.workload_out:
                print(f"wrote workload records to {args.workload_out}",
                      file=info)


def _cmd_serve(args) -> int:
    """Serve hums concurrently through the micro-batching service."""
    from .serve import AdmissionPolicy, QBHService, RetryPolicy
    from .serve.loadgen import RequestSpec, run_load, service_dispatch

    obs = None
    exporter = None
    if args.trace_out or args.metrics_out or args.metrics_jsonl:
        from .obs import Observability

        obs = Observability.to_files(
            trace_out=args.trace_out, metrics_out=args.metrics_out,
        )
        if args.metrics_jsonl:
            from .obs import PeriodicSnapshotExporter

            exporter = PeriodicSnapshotExporter(
                obs.metrics, jsonl_path=args.metrics_jsonl,
                interval_s=args.metrics_interval_s,
            ).start()
    try:
        index = _open_index(args)
        if obs is not None:
            index.set_observability(obs)
        hums = [_load_hum(path) for path in args.hum]
        admission = AdmissionPolicy(
            max_queue_depth=args.max_queue_depth,
            default_deadline_s=(args.deadline_ms / 1e3
                                if args.deadline_ms is not None else None),
        )
        service = QBHService.from_index(
            index,
            shards=args.shards,
            max_batch=args.max_batch,
            linger_ms=args.linger_ms,
            admission=admission,
            retry=RetryPolicy(),
            cache_size=args.cache_size,
            cache_ttl_s=args.ttl_s,
            workers=args.workers,
            health_interval_s=args.health_interval_s,
            shadow_fraction=args.shadow_fraction,
        )
        # Each hum is requested --repeat times; interleaving the hums
        # round-robin gives the scheduler real concurrent variety.
        specs = [RequestSpec(kind="knn", param=args.k, query_index=i)
                 for _ in range(args.repeat) for i in range(len(hums))]
        try:
            report = run_load(
                service_dispatch(service), specs, hums,
                clients=args.clients, mode="service",
            )
            report.saturation = service.saturation()
            # Answer rows: one (cached) authoritative lookup per hum.
            for path, hum in zip(args.hum, hums):
                outcome = service.knn(hum, args.k)
                print(f"\n{path}:")
                if outcome.ok:
                    _print_hits(outcome.results)
                else:
                    print(f"  <{outcome.status}>")
        finally:
            service.close()
        by_status = ", ".join(f"{status}={count}" for status, count
                              in sorted(report.by_status.items()))
        lat = report.latency_percentiles()
        print(f"\nserved {report.completed} requests "
              f"({by_status}) from {args.clients} clients "
              f"in {report.wall_s:.3f}s  ({report.qps:.1f} qps)")
        print(f"latency ms: p50={lat['p50'] * 1e3:.2f}  "
              f"p95={lat['p95'] * 1e3:.2f}  p99={lat['p99'] * 1e3:.2f}")
        if args.stats:
            saturation = report.saturation
            print("\nsaturation:")
            for key in ("submitted", "completed", "ok", "shed",
                        "deadline_exceeded", "error", "cache_hits",
                        "executed"):
                print(f"  {key:<18} {saturation[key]}")
            print(f"  {'shed_rate':<18} {saturation['shed_rate']:.1%}")
            print(f"  {'deadline_miss_rate':<18} "
                  f"{saturation['deadline_miss_rate']:.1%}")
            print(f"  {'cache_hit_rate':<18} "
                  f"{saturation['cache_hit_rate']:.1%}")
            shadow = saturation.get("shadow")
            if shadow is not None:
                agreement = (f"{shadow['agreement']:.1%}"
                             if shadow["agreement"] is not None else "-")
                print(f"  {'shadow':<18} checked={shadow['checked']} "
                      f"disagreed={shadow['disagreed']} "
                      f"agreement={agreement}")
            for row in saturation.get("shards", ()):
                state = "up" if row["alive"] else "DOWN"
                rtt = (f"{row['ping_rtt_s'] * 1e3:.2f}ms"
                       if row.get("ping_rtt_s") is not None else "-")
                rss = (f"{row['rss_bytes'] / 1e6:.1f}MB"
                       if row.get("rss_bytes") is not None else "-")
                print(f"  shard[{row['shard']}]          {state} "
                      f"epoch={row['epoch']} respawns={row['respawns']} "
                      f"requests={row['requests']} rtt={rtt} rss={rss}")
        return 0
    finally:
        if exporter is not None:
            exporter.close()
            print(f"wrote {exporter.samples} metrics snapshots to "
                  f"{args.metrics_jsonl}")
        if obs is not None:
            obs.close()
            if args.trace_out:
                print(f"wrote trace spans to {args.trace_out}")
            if args.metrics_out:
                print(f"wrote metrics snapshot to {args.metrics_out}")


def _cmd_bench_serve(args) -> int:
    """Closed-loop serving benchmark: micro-batching vs direct dispatch."""
    import json

    from .datasets.generators import random_walks
    from .engine import QueryEngine
    from .serve import QBHService
    from .serve.loadgen import (
        direct_dispatch,
        parity_mismatches,
        run_load,
        service_dispatch,
        zipf_workload,
    )

    if args.quick:
        corpus_size, length = 200, 64
        total, pool = 64, 16
    else:
        corpus_size, length = args.corpus_size, args.length
        total, pool = args.requests, args.pool
    corpus = random_walks(corpus_size, length, seed=5)
    engine = QueryEngine(list(corpus), delta=0.1)
    rng = np.random.default_rng(6)
    queries = [corpus[i % corpus_size] + 0.15 * rng.normal(size=length)
               for i in range(pool)]
    specs = zipf_workload(total, pool, s=args.zipf_s, seed=7,
                          kinds=("knn", "range"), knn_k=args.k,
                          epsilon=args.epsilon)

    direct = run_load(direct_dispatch(engine), specs, queries,
                      clients=args.clients, mode="direct")
    service = QBHService.from_engine(
        engine, shards=args.shards, max_batch=args.max_batch,
        linger_ms=args.linger_ms, cache_size=args.cache_size,
    )
    try:
        served = run_load(service_dispatch(service), specs, queries,
                          clients=args.clients, mode="service")
        served.saturation = service.saturation()
    finally:
        service.close()

    mismatches = parity_mismatches(direct, served)
    speedup = served.qps / direct.qps if direct.qps else float("inf")
    sharding = (f", {args.shards} shards"
                if args.shards and args.shards > 1 else "")
    print(f"workload: {total} requests over {pool} queries "
          f"(zipf s={args.zipf_s}), corpus {corpus_size}x{length}, "
          f"{args.clients} clients{sharding}")
    for report in (direct, served):
        lat = report.latency_percentiles()
        print(f"{report.mode:<8} {report.qps:8.1f} qps   "
              f"p50 {lat['p50'] * 1e3:7.2f} ms   "
              f"p95 {lat['p95'] * 1e3:7.2f} ms")
    print(f"speedup {speedup:.2f}x   parity mismatches {mismatches}")
    if args.json:
        payload = {
            "direct": direct.to_dict(),
            "service": served.to_dict(),
            "speedup": speedup,
            "parity_mismatches": mismatches,
            "shards": args.shards or 1,
        }
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote report to {args.json}")
    return 0 if mismatches == 0 else 1


def _cmd_obs_report(args) -> int:
    """Aggregate an exported span JSONL into the operator's report."""
    import json

    from .obs import TraceReadStats, analyze_traces, read_traces

    stats = TraceReadStats()
    report = analyze_traces(read_traces(args.trace, stats), stats)
    if not stats.spans:
        # An empty or all-garbage trace file gets a hard error, not a
        # bare all-zero table that reads like "everything was fast".
        print(f"error: no valid spans in {args.trace} "
              f"({stats.lines} line(s) read, {stats.bad_lines} bad)",
              file=sys.stderr)
        return 1
    if args.format == "json":
        text = json.dumps(report.to_dict(), indent=2, sort_keys=True)
    elif args.format == "folded":
        text = report.format_folded()
    elif args.scenarios:
        text = report.format_scenario_matrix()
    else:
        text = report.format_table(per_shard=args.per_shard)
    if stats.bad_lines and args.format != "table":
        # The table embeds its own WARNING header; the machine formats
        # keep stdout clean, so the caveat goes to stderr instead.
        print(f"warning: skipped {stats.bad_lines} undecodable line(s) "
              f"of {stats.lines} read from {args.trace}",
              file=sys.stderr)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.format} report to {args.out}")
    else:
        print(text)
    if not stats.traces:
        print(f"error: no complete traces in {args.trace} "
              f"({stats.bad_lines} bad lines, "
              f"{stats.incomplete_traces} incomplete)", file=sys.stderr)
        return 1
    return 0


def _cmd_obs_export(args) -> int:
    """Convert a metrics snapshot (JSON) into an external format."""
    import json

    from .obs import append_snapshot, prometheus_text

    with open(args.metrics) as handle:
        snapshot = json.load(handle)
    if not isinstance(snapshot, dict) or "counters" not in snapshot:
        print(f"error: {args.metrics} is not a metrics snapshot "
              f"(want the JSON written by --metrics-out)", file=sys.stderr)
        return 2
    if args.format == "jsonl":
        if not args.out:
            print("error: --format jsonl needs --out (the series file "
                  "to append to)", file=sys.stderr)
            return 2
        append_snapshot(args.out, snapshot)
        print(f"appended snapshot to {args.out}")
        return 0
    text = prometheus_text(snapshot)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text)
        print(f"wrote prometheus exposition to {args.out}")
    else:
        sys.stdout.write(text)
    return 0


def _cmd_obs_top(args) -> int:
    """One-shot terminal view of a metrics snapshot or series."""
    import json

    from .obs import format_top, read_snapshot_series

    if args.series:
        snapshots, bad = read_snapshot_series(args.series)
        if bad:
            print(f"warning: skipped {bad} undecodable line(s) in "
                  f"{args.series}", file=sys.stderr)
        if not snapshots:
            print(f"error: no snapshots in {args.series}", file=sys.stderr)
            return 1
        snapshot = snapshots[-1]
        print(f"series {args.series}: {len(snapshots)} snapshot(s), "
              f"showing the newest")
    else:
        with open(args.metrics) as handle:
            snapshot = json.load(handle)
        if not isinstance(snapshot, dict) or "counters" not in snapshot:
            print(f"error: {args.metrics} is not a metrics snapshot",
                  file=sys.stderr)
            return 2
    sys.stdout.write(format_top(snapshot))
    return 0


def _cmd_perf_record(args) -> int:
    """Append one BENCH_*.json snapshot to the benchmark history."""
    import json

    from .perf import BenchHistory

    with open(args.json) as handle:
        snapshot = json.load(handle)
    if "timings_ms" not in snapshot:
        print(f"error: {args.json} has no 'timings_ms' section",
              file=sys.stderr)
        return 2
    history = BenchHistory(args.history)
    entry = history.record(
        args.bench,
        snapshot["timings_ms"],
        snapshot.get("workload", {}),
        timestamp_s=(snapshot.get("metrics", {}) or {}).get("timestamp_s"),
    )
    print(f"recorded {args.bench} ({len(entry['timings_ms'])} timings, "
          f"machine {entry['machine']['fingerprint']}) -> {args.history}")
    return 0


def _cmd_perf_check(args) -> int:
    """Gate the newest benchmark runs against their history."""
    from .perf import BenchHistory, GateConfig, check_history

    history = BenchHistory(args.history)
    entries = history.entries()
    if not entries:
        print(f"error: no readable history entries in {args.history} "
              f"({history.read_stats.bad_lines} bad lines)",
              file=sys.stderr)
        return 2
    config = GateConfig(
        rel_tolerance=args.rel_tolerance,
        min_effect_ms=args.min_effect_ms,
        min_effect_floor=args.min_effect_floor,
        candidate_runs=args.candidate_runs,
        match_machine=not args.any_machine,
        inject_slowdown=args.inject_slowdown,
        metrics=tuple(args.metric) if args.metric else None,
        benches=tuple(args.bench) if args.bench else None,
    )
    report = check_history(entries, config)
    print(report.summary())
    if args.json_out:
        import json

        with open(args.json_out, "w") as handle:
            handle.write(json.dumps(report.to_dict(), indent=2,
                                    sort_keys=True) + "\n")
        print(f"wrote gate report to {args.json_out}", file=sys.stderr)
    return 0 if report.ok else 1


def _cmd_quality(args) -> int:
    """Run the degradation scenario matrix and print/record it."""
    from pathlib import Path

    from .music.corpus import generate_corpus, segment_corpus
    from .obs import OBS_DISABLED
    from .qbh.quality import run_scenario_matrix
    from .qbh.system import QueryByHummingSystem

    for out in (args.trace_out, args.metrics_out, args.json_out):
        if out:
            Path(out).parent.mkdir(parents=True, exist_ok=True)
    obs = None
    if args.trace_out or args.metrics_out:
        from .obs import Observability

        obs = Observability.to_files(
            trace_out=args.trace_out, metrics_out=args.metrics_out,
        )
    try:
        if args.corpus:
            from .persistence import load_corpus

            melodies = load_corpus(args.corpus)
        else:
            melodies = segment_corpus(
                generate_corpus(args.songs, seed=args.seed),
                per_song=args.per_song, seed=args.seed,
            )
        system = QueryByHummingSystem(melodies, delta=args.delta,
                                      normal_length=args.normal_length)
        matrix = run_scenario_matrix(
            system,
            scenarios=tuple(args.scenario) if args.scenario else None,
            severities=tuple(args.severity),
            queries_per_cell=args.queries,
            k=args.k,
            seed=args.seed,
            obs=obs if obs is not None else OBS_DISABLED,
        )
        print(matrix.format_table())
        if args.json_out:
            import json

            with open(args.json_out, "w") as handle:
                handle.write(json.dumps(matrix.to_dict(), indent=2,
                                        sort_keys=True) + "\n")
            print(f"wrote scenario matrix to {args.json_out}",
                  file=sys.stderr)
        return 0
    finally:
        if obs is not None:
            obs.close()
            if args.trace_out:
                print(f"wrote trace spans to {args.trace_out}",
                      file=sys.stderr)
            if args.metrics_out:
                print(f"wrote metrics snapshot to {args.metrics_out}",
                      file=sys.stderr)


def _cmd_perf_replay(args) -> int:
    """Re-execute a captured workload and verify answer parity."""
    from .perf import load_workload, replay_workload
    from .persistence import load_index

    records = load_workload(args.workload)
    if not records:
        print(f"error: no replayable records in {args.workload}",
              file=sys.stderr)
        return 2
    index = load_index(args.index)
    report = replay_workload(
        lambda backend: index.engine(dtw_backend=backend),
        records,
        backends=tuple(args.backends),
        modes=tuple(args.modes),
        workers=args.workers,
        atol=args.atol,
    )
    print(f"replaying {len(records)} recorded queries from "
          f"{args.workload} against {args.index} "
          f"(db={len(index)})", file=sys.stderr)
    print(report.summary())
    return 0 if report.ok else 1


def _cmd_hum(args) -> int:
    from .hum.singer import SingerProfile, hum_melody
    from .persistence import load_corpus

    melodies = load_corpus(args.corpus)
    if not 0 <= args.melody < len(melodies):
        print(f"error: melody index {args.melody} out of range "
              f"[0, {len(melodies)})", file=sys.stderr)
        return 2
    profile = (SingerProfile.poor() if args.profile == "poor"
               else SingerProfile.better())
    rng = np.random.default_rng(args.seed)
    hum = hum_melody(melodies[args.melody], profile, rng)
    np.save(args.out, hum)
    print(f"hummed {melodies[args.melody].name!r} as a {args.profile} singer "
          f"({hum.size} frames) -> {args.out}")
    return 0


def _cmd_assess(args) -> int:
    from .persistence import load_corpus
    from .qbh.scoring import assess_humming

    melodies = load_corpus(args.corpus)
    if not 0 <= args.melody < len(melodies):
        print(f"error: melody index {args.melody} out of range "
              f"[0, {len(melodies)})", file=sys.stderr)
        return 2
    melody = melodies[args.melody]
    hum = _load_hum(args.hum)
    report = assess_humming(hum, melody)
    print(f"assessing your humming of {melody.name!r}:")
    print(f"  grade: {report.grade()}")
    print(f"  mean |pitch error|: {report.mean_abs_pitch_error:.2f} semitones")
    print(f"  timing consistency: {report.timing_consistency:.2f}")
    worst = report.worst_note
    if worst is not None and abs(worst.pitch_error) > 0.5:
        direction = "sharp" if worst.pitch_error > 0 else "flat"
        print(f"  worst note: #{worst.index} "
              f"({melody.notes[worst.index].name}), "
              f"{abs(worst.pitch_error):.1f} semitones {direction}")
    return 0


def _cmd_analyze(args) -> int:
    from .music.analysis import analyze_corpus, find_duplicates
    from .persistence import load_corpus

    melodies = load_corpus(args.corpus)
    stats = analyze_corpus(melodies, estimate_keys=not args.no_keys)
    print(stats.summary())
    duplicates = find_duplicates(melodies)
    print(f"duplicate groups: {len(duplicates)}")
    return 0


def _cmd_export(args) -> int:
    from .music.notation import melody_to_abc
    from .persistence import load_corpus

    melodies = load_corpus(args.corpus)
    if not 0 <= args.melody < len(melodies):
        print(f"error: melody index {args.melody} out of range "
              f"[0, {len(melodies)})", file=sys.stderr)
        return 2
    melody = melodies[args.melody]
    abc = melody_to_abc(melody, title=melody.name)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(abc)
        print(f"wrote {melody.name!r} to {args.out}")
    else:
        print(abc, end="")
    return 0


def _cmd_tune(args) -> int:
    from .hum.singer import SingerProfile, hum_melody
    from .persistence import load_corpus
    from .tuning import tune_feature_count

    melodies = load_corpus(args.corpus)
    series = [m.to_time_series(8) for m in melodies]
    rng = np.random.default_rng(args.seed)
    targets = rng.choice(len(melodies), size=min(args.queries, len(melodies)),
                         replace=False)
    queries = [
        hum_melody(melodies[int(t)], SingerProfile.better(), rng)
        for t in targets
    ]
    report = tune_feature_count(
        series, queries, delta=args.delta,
        normal_length=args.normal_length,
        candidates_grid=tuple(args.grid),
    )
    print(report.summary())
    print(f"\nrecommended feature count: {report.recommended}")
    return 0


def _cmd_experiment(args) -> int:
    from . import experiments

    scale = experiments.active_scale()
    small_db = min(scale.fig10_db, 5000)
    runners = {
        "table2": lambda: experiments.run_table2(scale),
        "table3": lambda: experiments.run_table3(scale),
        "fig6": lambda: experiments.run_fig6(scale),
        "fig7": lambda: experiments.run_fig7(scale),
        "fig8": lambda: experiments.run_fig8(scale),
        "fig9": lambda: experiments.run_fig9(scale),
        "fig10": lambda: experiments.run_fig10(scale),
        "scaling": lambda: experiments.run_size_scaling(scale),
        "signsplit": lambda: experiments.run_signsplit_ablation(
            max(200, scale.fig7_pairs)),
        "knn": lambda: experiments.run_knn_ablation(
            small_db, scale.fig8_queries),
        "backends": lambda: experiments.run_backend_ablation(
            small_db, scale.fig8_queries),
        "secondfilter": lambda: experiments.run_second_filter_ablation(
            small_db, scale.fig8_queries),
        "cascade": lambda: experiments.run_cascade_ablation(
            small_db, scale.fig8_queries),
        "splits": lambda: experiments.run_split_ablation(
            min(scale.fig10_db, 3000), scale.fig8_queries),
        "noise": lambda: experiments.run_noise_sweep(scale),
    }
    if args.which not in runners:
        print(f"error: unknown experiment {args.which!r}; choose from "
              f"{sorted(runners)}", file=sys.stderr)
        return 2
    print(f"running {args.which} at {scale.name} scale "
          f"(set REPRO_SCALE=full|smoke to change) ...")
    result = runners[args.which]()
    if args.which in ("table2", "table3"):
        from .qbh.evaluation import format_rank_tables

        tables = list(result) if isinstance(result, (list, tuple)) else [result]
        print(format_rank_tables(tables, title=args.which))
    else:
        rows = result[0] if isinstance(result, tuple) else result
        print(experiments.format_series(args.which, rows))
    return 0


def _cmd_report(args) -> int:
    from .experiments import active_scale, generate_report

    scale = active_scale()
    print(f"generating reproduction report at {scale.name} scale ...",
          file=sys.stderr)
    text = generate_report(
        scale, include=tuple(args.sections) if args.sections else None
    )
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(text)
        print(f"wrote {args.out}")
    else:
        print(text)
    return 0


def _cmd_demo(args) -> int:
    from .hum.singer import SingerProfile, hum_melody
    from .music.corpus import generate_corpus, segment_corpus
    from .qbh.system import QueryByHummingSystem

    melodies = segment_corpus(generate_corpus(args.songs, seed=args.seed),
                              per_song=20, seed=args.seed)
    system = QueryByHummingSystem(melodies, delta=0.1)
    rng = np.random.default_rng(args.seed)
    target = int(rng.integers(len(melodies)))
    hum = hum_melody(melodies[target], SingerProfile.better(), rng)
    results, stats = system.query(hum, k=5)
    print(f"database: {len(system)} melodies; hummed {melodies[target].name!r}")
    print(f"filter: {stats.candidates} candidates, "
          f"{stats.page_accesses} page accesses")
    for rank, (name, dist) in enumerate(results, start=1):
        marker = "  <-- target" if name == melodies[target].name else ""
        print(f"{rank}. {name} ({dist:.2f}){marker}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Query by humming with warping indexes (SIGMOD 2003)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_corpus = sub.add_parser("corpus", help="generate a MIDI melody corpus")
    p_corpus.add_argument("--songs", type=int, default=50)
    p_corpus.add_argument("--per-song", type=int, default=20)
    p_corpus.add_argument("--seed", type=int, default=1)
    p_corpus.add_argument("--out", required=True)
    p_corpus.set_defaults(func=_cmd_corpus)

    p_index = sub.add_parser("index", help="build and save a warping index")
    p_index.add_argument("--corpus", required=True)
    p_index.add_argument("--out",
                         help=".npz index file (optional with --store-dir)")
    p_index.add_argument("--store-dir", metavar="DIR",
                         help="also (or instead) stream-build a columnar "
                              "store generation at DIR — the bulk-load "
                              "path with bounded staging memory")
    p_index.add_argument("--memory-budget-mb", type=float, default=64.0,
                         help="staging-buffer budget for --store-dir "
                              "builds (default: 64)")
    p_index.add_argument("--delta", type=float, default=0.1)
    p_index.add_argument("--features", type=int, default=8)
    p_index.add_argument("--normal-length", type=int, default=128)
    p_index.add_argument("--transform", choices=("new_paa", "keogh_paa"),
                         default="new_paa")
    p_index.add_argument("--backend", choices=("rstar", "grid", "linear"),
                         default="rstar")
    p_index.set_defaults(func=_cmd_index)

    p_ingest = sub.add_parser(
        "ingest",
        help="stream a corpus into a columnar store (init or append a "
             "generation; the offline twin of the background ingest "
             "worker)",
    )
    p_ingest.add_argument("--corpus", required=True,
                          help="MIDI corpus directory (repro corpus)")
    p_ingest.add_argument("--store-dir", required=True, metavar="DIR")
    p_ingest.add_argument("--memory-budget-mb", type=float, default=64.0,
                          help="staging-buffer budget (default: 64)")
    p_ingest.add_argument("--delta", type=float, default=0.1,
                          help="warping width for a fresh store "
                               "(appends reuse the store's config)")
    p_ingest.add_argument("--features", type=int, default=8)
    p_ingest.add_argument("--normal-length", type=int, default=128)
    p_ingest.add_argument("--id-prefix", default="", metavar="P",
                          help="prefix melody ids with P (ids must be "
                               "unique across the whole store)")
    p_ingest.add_argument("--no-activate", action="store_true",
                          help="seal the generation but leave CURRENT "
                               "pointing at the previous one")
    p_ingest.add_argument("--keep", type=int, metavar="N",
                          help="after activating, prune to the newest N "
                               "generations (default: keep all)")
    p_ingest.set_defaults(func=_cmd_ingest)

    p_hum = sub.add_parser("hum", help="simulate humming a corpus melody")
    p_hum.add_argument("--corpus", required=True)
    p_hum.add_argument("--melody", type=int, required=True)
    p_hum.add_argument("--profile", choices=("better", "poor"),
                       default="better")
    p_hum.add_argument("--seed", type=int, default=0)
    p_hum.add_argument("--out", required=True)
    p_hum.set_defaults(func=_cmd_hum)

    p_query = sub.add_parser("query", help="query a saved index with a hum")
    p_query.add_argument("--index",
                         help=".npz index file (or use --store-dir)")
    p_query.add_argument("--store-dir", metavar="DIR",
                         help="open the live generation of a columnar "
                              "store instead of an .npz index")
    p_query.add_argument("--hum", required=True, nargs="+",
                         help=".npy pitch series or .mid melody; several "
                              "hums are served as one parallel batch")
    p_query.add_argument("-k", type=int, default=10)
    p_query.add_argument("--stats", action="store_true",
                         help="answer via the batched filter cascade and "
                              "print per-stage pruning counters")
    p_query.add_argument("--dtw-backend", choices=("vectorized", "scalar"),
                         help="DTW kernel for exact refinement "
                              "(default: vectorized)")
    p_query.add_argument("--workers", type=int,
                         help="thread-pool size for multi-hum batches "
                              "(default: one per CPU core)")
    p_query.add_argument("--shards", type=int,
                         help="answer through N worker processes instead "
                              "of in-process threads (default: the "
                              "index's saved shard count, or unsharded)")
    p_query.add_argument("--stats-json", nargs="?", const="-", metavar="FILE",
                         help="emit results + cascade stats as one JSON "
                              "document to FILE (or stdout with no FILE; "
                              "diagnostics then go to stderr)")
    p_query.add_argument("--trace-out", metavar="FILE",
                         help="export tracing spans of every query as "
                              "JSONL (query -> stage -> refine -> kernel)")
    p_query.add_argument("--metrics-out", metavar="FILE",
                         help="write a metrics-registry snapshot (JSON) "
                              "after serving")
    p_query.add_argument("--slow-query-ms", type=float, metavar="N",
                         help="log queries slower than N ms to stderr; "
                              "with --trace-out, export only their traces "
                              "and workload records")
    p_query.add_argument("--trace-append", action="store_true",
                         help="append to an existing --trace-out file "
                              "instead of truncating it (accumulate a "
                              "slow-query corpus across runs)")
    p_query.add_argument("--workload-out", metavar="FILE",
                         help="capture each served query (raw input, "
                              "parameters, exact results) as replayable "
                              "JSONL for 'repro perf replay'")
    p_query.set_defaults(func=_cmd_query)

    p_serve = sub.add_parser(
        "serve",
        help="serve hums concurrently with micro-batching, deadlines, "
             "and a result cache",
    )
    p_serve.add_argument("--index",
                         help=".npz index file (or use --store-dir)")
    p_serve.add_argument("--store-dir", metavar="DIR",
                         help="serve the live generation of a columnar "
                              "store instead of an .npz index")
    p_serve.add_argument("--hum", required=True, nargs="+",
                         help=".npy pitch series or .mid melody; the "
                              "request mix cycles over all of them")
    p_serve.add_argument("-k", type=int, default=10)
    p_serve.add_argument("--clients", type=int, default=8,
                         help="concurrent closed-loop clients (default: 8)")
    p_serve.add_argument("--repeat", type=int, default=4,
                         help="requests per hum (default: 4)")
    p_serve.add_argument("--max-batch", type=int, default=8,
                         help="micro-batch size cap (default: 8)")
    p_serve.add_argument("--linger-ms", type=float, default=2.0,
                         help="batching window in ms (default: 2)")
    p_serve.add_argument("--deadline-ms", type=float,
                         help="per-request deadline; lapsed requests "
                              "return deadline_exceeded, never results")
    p_serve.add_argument("--max-queue-depth", type=int, default=64,
                         help="admission bound: arrivals past this are "
                              "shed with a retry hint (default: 64)")
    p_serve.add_argument("--cache-size", type=int, default=1024,
                         help="result-cache entries, 0 disables "
                              "(default: 1024)")
    p_serve.add_argument("--ttl-s", type=float,
                         help="result-cache time-to-live in seconds")
    p_serve.add_argument("--workers", type=int,
                         help="threads executing distinct queries of one "
                              "batch (default: serial)")
    p_serve.add_argument("--shards", type=int,
                         help="partition the index across N worker "
                              "processes (default: the index's saved "
                              "shard count, or unsharded)")
    p_serve.add_argument("--stats", action="store_true",
                         help="print the saturation counters after the run")
    p_serve.add_argument("--trace-out", metavar="FILE",
                         help="export serve:request/serve:batch and engine "
                              "spans as JSONL (feeds 'repro obs report')")
    p_serve.add_argument("--metrics-out", metavar="FILE",
                         help="write a metrics-registry snapshot (JSON) "
                              "after serving")
    p_serve.add_argument("--health-interval-s", type=float, metavar="S",
                         help="with --shards, heartbeat the worker fleet "
                              "every S seconds (ping RTT, RSS, respawns "
                              "land in shard.health.* gauges and the "
                              "saturation report)")
    p_serve.add_argument("--metrics-jsonl", metavar="FILE",
                         help="sample the metrics registry into an "
                              "append-only snapshot series while serving "
                              "(feeds 'repro obs top --series')")
    p_serve.add_argument("--metrics-interval-s", type=float, default=1.0,
                         metavar="S",
                         help="sampling period for --metrics-jsonl "
                              "(default: 1.0)")
    p_serve.add_argument("--shadow-fraction", type=float, default=0.0,
                         metavar="F",
                         help="shadow-score this fraction of served "
                              "requests against an exact engine call "
                              "(quality.shadow.* metrics; default: off)")
    p_serve.set_defaults(func=_cmd_serve)

    p_bench_serve = sub.add_parser(
        "bench-serve",
        help="closed-loop load benchmark: micro-batching service vs "
             "direct per-query dispatch (exits 1 on parity mismatch)",
    )
    p_bench_serve.add_argument("--quick", action="store_true",
                               help="small smoke-sized workload")
    p_bench_serve.add_argument("--requests", type=int, default=160,
                               help="total requests (default: 160)")
    p_bench_serve.add_argument("--pool", type=int, default=32,
                               help="distinct queries drawn from "
                                    "(default: 32)")
    p_bench_serve.add_argument("--corpus-size", type=int, default=800,
                               help="in-memory corpus rows (default: 800)")
    p_bench_serve.add_argument("--length", type=int, default=128,
                               help="series length (default: 128)")
    p_bench_serve.add_argument("--zipf-s", type=float, default=1.3,
                               help="popularity skew exponent "
                                    "(default: 1.3)")
    p_bench_serve.add_argument("--clients", type=int, default=8)
    p_bench_serve.add_argument("-k", type=int, default=5)
    p_bench_serve.add_argument("--epsilon", type=float, default=4.0)
    p_bench_serve.add_argument("--max-batch", type=int, default=8)
    p_bench_serve.add_argument("--linger-ms", type=float, default=2.0)
    p_bench_serve.add_argument("--cache-size", type=int, default=1024)
    p_bench_serve.add_argument("--shards", type=int,
                               help="serve through N shard processes "
                                    "(default: single-process)")
    p_bench_serve.add_argument("--json", metavar="FILE",
                               help="also write the comparison as JSON")
    p_bench_serve.set_defaults(func=_cmd_bench_serve)

    p_quality = sub.add_parser(
        "quality",
        help="run the hum-degradation scenario matrix: recall@k, MRR, "
             "and latency per (scenario, severity) cell, with a "
             "contour-string baseline column",
    )
    p_quality.add_argument("--corpus", metavar="FILE",
                           help="melody corpus from `repro corpus` "
                                "(default: generate one in memory)")
    p_quality.add_argument("--songs", type=int, default=8,
                           help="songs for the generated corpus "
                                "(default: 8)")
    p_quality.add_argument("--per-song", type=int, default=4,
                           help="melody segments per song (default: 4)")
    p_quality.add_argument("--queries", type=int, default=3,
                           help="queries per (scenario, severity) cell "
                                "(default: 3)")
    p_quality.add_argument("--scenario", nargs="+", metavar="NAME",
                           help="restrict to these scenarios "
                                "(default: all; see repro.hum.degrade)")
    p_quality.add_argument("--severity", nargs="+", type=float,
                           default=[0.25, 0.5, 1.0], metavar="S",
                           help="severity levels in [0, 1] "
                                "(default: 0.25 0.5 1.0)")
    p_quality.add_argument("-k", type=int, default=10,
                           help="top-k answers per query (default: 10)")
    p_quality.add_argument("--delta", type=float, default=0.1,
                           help="DTW warping-band width (default: 0.1)")
    p_quality.add_argument("--normal-length", type=int, default=128,
                           help="normal-form length (default: 128)")
    p_quality.add_argument("--seed", type=int, default=0)
    p_quality.add_argument("--trace-out", metavar="FILE",
                           help="also write quality:query spans as JSONL")
    p_quality.add_argument("--metrics-out", metavar="FILE",
                           help="also write a quality.* metrics snapshot")
    p_quality.add_argument("--json-out", metavar="FILE",
                           help="also write the matrix as JSON")
    p_quality.set_defaults(func=_cmd_quality)

    p_obs = sub.add_parser(
        "obs", help="analyze exported observability data"
    )
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)
    p_obs_report = obs_sub.add_parser(
        "report",
        help="aggregate a span JSONL into latency percentiles, "
             "pruning power, and critical paths",
    )
    p_obs_report.add_argument("--trace", required=True, metavar="FILE",
                              help="span JSONL written by --trace-out")
    p_obs_report.add_argument("--format",
                              choices=("table", "json", "folded"),
                              default="table",
                              help="terminal table, JSON document, or "
                                   "folded stacks for flamegraph tools")
    p_obs_report.add_argument("--out", metavar="FILE",
                              help="write the report to FILE instead of "
                                   "stdout")
    p_obs_report.add_argument("--per-shard", action="store_true",
                              help="append the per-shard breakdown table "
                                   "(latency percentiles, work share, "
                                   "pruning power per worker process)")
    p_obs_report.add_argument("--scenarios", action="store_true",
                              help="render the quality scenario matrix "
                                   "(recall@k and latency per degradation "
                                   "scenario x severity, contour baseline "
                                   "column) from quality:query spans")
    p_obs_report.set_defaults(func=_cmd_obs_report)

    p_obs_export = obs_sub.add_parser(
        "export",
        help="convert a --metrics-out snapshot to Prometheus text "
             "exposition or append it to a JSONL time series",
    )
    p_obs_export.add_argument("--metrics", required=True, metavar="FILE",
                              help="metrics snapshot JSON written by "
                                   "--metrics-out")
    p_obs_export.add_argument("--format",
                              choices=("prometheus", "jsonl"),
                              default="prometheus",
                              help="prometheus text exposition (default) "
                                   "or one appended JSONL series line")
    p_obs_export.add_argument("--out", metavar="FILE",
                              help="output file (default: stdout; "
                                   "required for --format jsonl)")
    p_obs_export.set_defaults(func=_cmd_obs_export)

    p_obs_top = obs_sub.add_parser(
        "top",
        help="one-shot terminal view: headline counters plus the "
             "per-shard health table",
    )
    top_src = p_obs_top.add_mutually_exclusive_group(required=True)
    top_src.add_argument("--metrics", metavar="FILE",
                         help="metrics snapshot JSON written by "
                              "--metrics-out")
    top_src.add_argument("--series", metavar="FILE",
                         help="snapshot JSONL series (shows the newest "
                              "sample)")
    p_obs_top.set_defaults(func=_cmd_obs_top)

    p_perf = sub.add_parser(
        "perf", help="benchmark history, regression gate, workload replay"
    )
    perf_sub = p_perf.add_subparsers(dest="perf_command", required=True)

    p_perf_record = perf_sub.add_parser(
        "record",
        help="append one BENCH_*.json snapshot to BENCH_history.jsonl",
    )
    p_perf_record.add_argument("--bench", required=True,
                               help="bench name, e.g. cascade, dtw_kernel")
    p_perf_record.add_argument("--json", required=True, metavar="FILE",
                               help="BENCH_*.json snapshot to ingest")
    p_perf_record.add_argument("--history", default="BENCH_history.jsonl",
                               metavar="FILE")
    p_perf_record.set_defaults(func=_cmd_perf_record)

    p_perf_check = perf_sub.add_parser(
        "check",
        help="fail (exit 1) when the newest runs regressed vs history",
    )
    p_perf_check.add_argument("--history", default="BENCH_history.jsonl",
                              metavar="FILE")
    p_perf_check.add_argument("--rel-tolerance", type=float, default=0.20,
                              help="relative slowdown that fails the gate "
                                   "(default: 0.20 = 20%%)")
    p_perf_check.add_argument("--min-effect-ms", type=float, default=1.0,
                              help="absolute slowdown floor below which "
                                   "jitter never fails the gate")
    p_perf_check.add_argument("--min-effect-floor", type=float,
                              default=0.02,
                              help="absolute drop a higher-is-better "
                                   "quality metric (recall_at/mrr/"
                                   "agreement) must lose before the floor "
                                   "gate fails (default: 0.02)")
    p_perf_check.add_argument("--candidate-runs", type=int, default=1,
                              help="median the newest K runs into the "
                                   "candidate (default: 1)")
    p_perf_check.add_argument("--any-machine", action="store_true",
                              help="also compare runs across machine "
                                   "fingerprints")
    p_perf_check.add_argument("--inject-slowdown", type=float, default=1.0,
                              metavar="F",
                              help="multiply candidate timings by F "
                                   "(the gate's self-test)")
    p_perf_check.add_argument("--bench", nargs="+",
                              help="restrict to these bench names")
    p_perf_check.add_argument("--metric", nargs="+",
                              help="restrict to these timing metrics")
    p_perf_check.add_argument("--json-out", metavar="FILE",
                              help="also write the gate report as JSON")
    p_perf_check.set_defaults(func=_cmd_perf_check)

    p_perf_replay = perf_sub.add_parser(
        "replay",
        help="re-execute a captured workload and verify answer parity",
    )
    p_perf_replay.add_argument("--workload", required=True, metavar="FILE",
                               help="workload JSONL from --workload-out")
    p_perf_replay.add_argument("--index", required=True,
                               help="saved index to replay against")
    p_perf_replay.add_argument("--backends", nargs="+",
                               choices=("vectorized", "scalar"),
                               default=["vectorized", "scalar"])
    p_perf_replay.add_argument("--modes", nargs="+",
                               choices=("serial", "many"),
                               default=["serial", "many"])
    p_perf_replay.add_argument("--workers", type=int,
                               help="thread-pool size for the 'many' mode")
    p_perf_replay.add_argument("--atol", type=float, default=1e-9,
                               help="distance tolerance (default: 1e-9)")
    p_perf_replay.set_defaults(func=_cmd_perf_replay)

    p_assess = sub.add_parser("assess",
                              help="grade a hum against its intended melody")
    p_assess.add_argument("--corpus", required=True)
    p_assess.add_argument("--melody", type=int, required=True)
    p_assess.add_argument("--hum", required=True,
                          help=".npy pitch series or .mid melody")
    p_assess.set_defaults(func=_cmd_assess)

    p_analyze = sub.add_parser("analyze", help="corpus statistics report")
    p_analyze.add_argument("--corpus", required=True)
    p_analyze.add_argument("--no-keys", action="store_true",
                           help="skip key estimation (faster)")
    p_analyze.set_defaults(func=_cmd_analyze)

    p_export = sub.add_parser("export",
                              help="render a corpus melody as ABC notation")
    p_export.add_argument("--corpus", required=True)
    p_export.add_argument("--melody", type=int, required=True)
    p_export.add_argument("--out", help="write to a file instead of stdout")
    p_export.set_defaults(func=_cmd_export)

    p_tune = sub.add_parser("tune",
                            help="recommend a feature dimensionality")
    p_tune.add_argument("--corpus", required=True)
    p_tune.add_argument("--delta", type=float, default=0.1)
    p_tune.add_argument("--normal-length", type=int, default=128)
    p_tune.add_argument("--queries", type=int, default=5)
    p_tune.add_argument("--grid", type=int, nargs="+", default=[4, 8, 16, 32])
    p_tune.add_argument("--seed", type=int, default=0)
    p_tune.set_defaults(func=_cmd_tune)

    p_exp = sub.add_parser("experiment",
                           help="regenerate one of the paper's tables/figures")
    p_exp.add_argument(
        "which",
        help="table2|table3|fig6|fig7|fig8|fig9|fig10|scaling|"
             "signsplit|knn|backends|secondfilter|splits|noise",
    )
    p_exp.set_defaults(func=_cmd_experiment)

    p_report = sub.add_parser(
        "report",
        help="run every experiment and write one markdown report",
    )
    p_report.add_argument("--out", help="output file (default: stdout)")
    p_report.add_argument("--sections", nargs="+",
                          help="subset of experiment sections to run")
    p_report.set_defaults(func=_cmd_report)

    p_demo = sub.add_parser("demo", help="end-to-end demo in memory")
    p_demo.add_argument("--songs", type=int, default=20)
    p_demo.add_argument("--seed", type=int, default=0)
    p_demo.set_defaults(func=_cmd_demo)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
