"""Thread-safe staging buffer for melodies awaiting the next rebuild.

Producers (API handlers, CLI, tests) call :meth:`IngestQueue.add` while
the index keeps serving; the background
:class:`~repro.ingest.worker.IngestCoordinator` blocks in
:meth:`wait_for_items` and drains the whole buffer per rebuild.  The
queue never touches the index — it is pure staging, so adds are O(1)
and never block behind a rebuild.
"""

from __future__ import annotations

import threading
from typing import Any, Iterable

import numpy as np

__all__ = ["IngestQueue"]


class IngestQueue:
    """Bounded staging buffer of ``(id, pitch series)`` pairs."""

    def __init__(self, *, max_pending: int | None = None) -> None:
        if max_pending is not None and max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self._max_pending = max_pending
        self._items: list[tuple[Any, np.ndarray]] = []
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._accepted_total = 0

    def add(self, item_id: Any, series) -> int:
        """Stage one melody; returns the pending count.

        Raises ``OverflowError`` when the buffer is full — admission
        pressure the caller can surface as backoff.
        """
        arr = np.asarray(series, dtype=np.float64)
        if arr.ndim != 1 or arr.size < 2:
            raise ValueError(
                f"series must be 1-D with >= 2 samples, got shape "
                f"{arr.shape}"
            )
        with self._lock:
            if (self._max_pending is not None
                    and len(self._items) >= self._max_pending):
                raise OverflowError(
                    f"ingest queue full ({self._max_pending} pending)"
                )
            self._items.append((item_id, arr))
            self._accepted_total += 1
            pending = len(self._items)
            self._ready.notify_all()
        return pending

    def extend(self, pairs: Iterable[tuple[Any, Any]]) -> int:
        """Stage many ``(id, series)`` pairs; returns the pending count."""
        pending = self.pending
        for item_id, series in pairs:
            pending = self.add(item_id, series)
        return pending

    def drain(self) -> list[tuple[Any, np.ndarray]]:
        """Atomically take (and clear) everything staged so far."""
        with self._lock:
            items, self._items = self._items, []
        return items

    def wait_for_items(self, timeout_s: float | None = None) -> bool:
        """Block until at least one item is staged (or timeout)."""
        with self._lock:
            if self._items:
                return True
            self._ready.wait(timeout=timeout_s)
            return bool(self._items)

    def wake(self) -> None:
        """Wake any waiter without staging (used for shutdown)."""
        with self._lock:
            self._ready.notify_all()

    @property
    def pending(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def accepted_total(self) -> int:
        with self._lock:
            return self._accepted_total

    def __len__(self) -> int:
        return self.pending
