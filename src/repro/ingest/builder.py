"""Streaming corpus builder: raw pitch series → columnar store generation.

One pass over the input sequences, chunked so staging buffers never
exceed a configurable memory budget.  Per chunk: windows are brought to
the normal form in float64, quantized into a float32 staging buffer,
k-envelopes are computed vectorized over the whole chunk (exact for the
stored float32 data — envelope values are order statistics), GEMINI
features are extracted batched in float64 and quantized to float32 with
the maximum absolute quantization error tracked as the generation's
``feature_margin``, and the chunk is appended to the generation's
segment files.

Passing ``base=`` builds an *incremental* generation: the previous
generation's segments are inherited by hard link and only the new rows
are written — the path the background ingest worker uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

import numpy as np

from ..core.envelope_transforms import (
    EnvelopeTransform,
    KeoghPAAEnvelopeTransform,
    NewPAAEnvelopeTransform,
    SignSplitEnvelopeTransform,
)
from ..core.envelope import warping_width_to_k
from ..core.normal_form import NormalForm
from ..core.transforms import LinearTransform
from ..obs import OBS_DISABLED, Observability
from ..obs.clock import monotonic_s
from ..store import CorpusStore, GenerationWriter, activate_generation
from ..store.corpus import StoreError, list_generations

__all__ = ["BuildReport", "StreamingIndexBuilder", "batch_envelope",
           "transform_config", "transform_from_config"]


def batch_envelope(chunk: np.ndarray, k: int
                   ) -> tuple[np.ndarray, np.ndarray]:
    """Row-wise k-envelopes of a ``(rows, n)`` chunk, vectorized.

    Equivalent to :func:`repro.core.envelope.k_envelope` per row
    (sliding min/max with edge truncation) but computed for the whole
    chunk with one ``sliding_window_view`` — the batched path the
    streaming builder uses.  Exact for any dtype: envelope values are
    elements of the input.
    """
    chunk = np.asarray(chunk)
    if chunk.ndim != 2:
        raise ValueError(f"expected (rows, n) chunk, got shape {chunk.shape}")
    if k < 0:
        raise ValueError(f"window half-width must be >= 0, got {k}")
    if k == 0:
        return chunk.copy(), chunk.copy()
    rows, n = chunk.shape
    if rows == 0:
        return chunk.copy(), chunk.copy()
    info = (np.finfo(chunk.dtype) if np.issubdtype(chunk.dtype, np.floating)
            else np.iinfo(chunk.dtype))
    window = 2 * k + 1
    padded_lo = np.full((rows, n + 2 * k), info.max, dtype=chunk.dtype)
    padded_lo[:, k:k + n] = chunk
    lower = np.min(
        np.lib.stride_tricks.sliding_window_view(padded_lo, window, axis=1),
        axis=2,
    )
    padded_hi = np.full((rows, n + 2 * k), info.min, dtype=chunk.dtype)
    padded_hi[:, k:k + n] = chunk
    upper = np.max(
        np.lib.stride_tricks.sliding_window_view(padded_hi, window, axis=1),
        axis=2,
    )
    return lower, upper


def transform_config(env_transform: EnvelopeTransform) -> dict[str, Any]:
    """JSON-able envelope-transform spec for the store manifest."""
    n = env_transform.input_length
    if isinstance(env_transform, NewPAAEnvelopeTransform):
        return {"kind": "new_paa", "input_length": n,
                "n_frames": env_transform.output_dim}
    if isinstance(env_transform, KeoghPAAEnvelopeTransform):
        return {"kind": "keogh_paa", "input_length": n,
                "n_frames": env_transform.output_dim}
    if isinstance(env_transform, SignSplitEnvelopeTransform):
        return {"kind": "sign_split", "input_length": n,
                "name": env_transform.name,
                "matrix": env_transform.transform.matrix.tolist()}
    raise TypeError(
        f"cannot serialise envelope transform of type "
        f"{type(env_transform).__name__}"
    )


def transform_from_config(spec: dict[str, Any], *,
                          metric: str = "euclidean") -> EnvelopeTransform:
    kind = spec["kind"]
    if kind == "new_paa":
        return NewPAAEnvelopeTransform(spec["input_length"],
                                       spec["n_frames"], metric=metric)
    if kind == "keogh_paa":
        return KeoghPAAEnvelopeTransform(spec["input_length"],
                                         spec["n_frames"])
    if kind == "sign_split":
        matrix = np.asarray(spec["matrix"], dtype=np.float64)
        return SignSplitEnvelopeTransform(
            LinearTransform(matrix, name=spec.get("name")),
            name=spec.get("name"),
        )
    raise ValueError(f"unknown envelope transform kind {kind!r}")


@dataclass
class BuildReport:
    """What one streaming build did (and what it cost)."""

    generation: int
    kind: str
    rows: int
    sequences: int
    build_s: float
    rows_per_s: float
    flushes: int
    chunk_rows: int
    peak_buffer_bytes: int
    budget_bytes: int
    feature_margin: float
    activated: bool

    def to_dict(self) -> dict[str, Any]:
        return {
            "generation": self.generation,
            "kind": self.kind,
            "rows": self.rows,
            "sequences": self.sequences,
            "build_s": self.build_s,
            "rows_per_s": self.rows_per_s,
            "flushes": self.flushes,
            "chunk_rows": self.chunk_rows,
            "peak_buffer_bytes": self.peak_buffer_bytes,
            "budget_bytes": self.budget_bytes,
            "feature_margin": self.feature_margin,
            "activated": self.activated,
        }


@dataclass
class _Chunk:
    """Preallocated float32 staging buffers for one flush unit."""

    normalized: np.ndarray
    meta: np.ndarray
    fill: int = 0
    peak_bytes: int = field(default=0)


class StreamingIndexBuilder:
    """Build columnar-store generations in one streaming pass.

    Parameters mirror :class:`~repro.index.WarpingIndex` /
    :class:`~repro.index.SubsequenceIndex` so a store built here can be
    opened by their ``from_store`` constructors with identical query
    semantics.

    ``memory_budget_mb`` bounds the builder's own staging allocation:
    the chunk size is derived from a deterministic per-row byte account
    (float32 staging columns + the transient float64 arrays of the
    batched feature/normalisation pass), and the resulting
    ``peak_buffer_bytes`` is reported so benchmarks can gate on it.
    """

    def __init__(self, root: str, *, kind: str = "melody",
                 delta: float = 0.1,
                 normal_form: NormalForm | None = None,
                 env_transform: EnvelopeTransform | None = None,
                 n_features: int = 8,
                 metric: str = "euclidean",
                 window_lengths: Sequence[int] = (64,),
                 stride: int = 16,
                 capacity: int = 50,
                 memory_budget_mb: float = 64.0,
                 obs: Observability | None = None) -> None:
        if kind not in ("melody", "subsequence"):
            raise ValueError(f"unknown store kind {kind!r}")
        if metric not in ("euclidean", "manhattan"):
            raise ValueError(f"unknown metric {metric!r}")
        if memory_budget_mb <= 0:
            raise ValueError("memory_budget_mb must be > 0")
        self.root = root
        self.kind = kind
        self.delta = float(delta)
        self.metric = metric
        self.obs = OBS_DISABLED if obs is None else obs
        self.normal_form = normal_form or NormalForm(length=64)
        if self.normal_form.length is None:
            raise ValueError(
                "streaming builds require a fixed normal-form length"
            )
        self.normal_length = self.normal_form.length
        self.env_transform = env_transform or NewPAAEnvelopeTransform(
            self.normal_length, n_features, metric=metric
        )
        if self.env_transform.input_length != self.normal_length:
            raise ValueError(
                "envelope transform length does not match the normal form"
            )
        self.n_features = self.env_transform.output_dim
        self.band = warping_width_to_k(self.delta, self.normal_length)
        if stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        if not window_lengths or any(w < 2 for w in window_lengths):
            raise ValueError("window lengths must be >= 2")
        self.window_lengths = tuple(int(w) for w in window_lengths)
        self.stride = int(stride)
        self.capacity = int(capacity)
        self.budget_bytes = int(memory_budget_mb * (1 << 20))
        n, d, k = self.normal_length, self.n_features, self.band
        # Deterministic staging account per buffered row: the float32
        # normalized chunk + int64 meta held across the chunk, plus the
        # transient flush-time arrays (float64 feature matmul input and
        # output, float32 features, padded float32 envelope scratch and
        # the two envelope outputs).
        self.row_bytes = (
            n * 4 + 24            # normalized f32 + meta i64
            + n * 8 + d * 8 + d * 4   # f64 upcast, f64 feats, f32 feats
            + 2 * (n + 2 * k) * 4     # padded envelope scratch (lo+hi)
            + 2 * n * 4               # envelope outputs
        )
        self.chunk_rows = max(1, self.budget_bytes // self.row_bytes)

    # -- config round-trip -------------------------------------------

    def store_config(self) -> dict[str, Any]:
        return {
            "delta": self.delta,
            "normal_form": {
                "length": self.normal_form.length,
                "shift": self.normal_form.shift,
                "scale": self.normal_form.scale,
            },
            "env_transform": transform_config(self.env_transform),
            "window_lengths": list(self.window_lengths),
            "stride": self.stride,
            "capacity": self.capacity,
        }

    @classmethod
    def for_store(cls, store: CorpusStore, *,
                  memory_budget_mb: float = 64.0,
                  obs: Observability | None = None
                  ) -> "StreamingIndexBuilder":
        """Builder matching an existing generation's schema."""
        manifest = store.manifest
        cfg = manifest.config
        nf = cfg.get("normal_form", {})
        normal_form = NormalForm(
            length=nf.get("length", manifest.normal_length),
            shift=nf.get("shift", True),
            scale=nf.get("scale", False),
        )
        env_spec = cfg.get("env_transform")
        env_transform = (
            transform_from_config(env_spec, metric=manifest.metric)
            if env_spec else None
        )
        return cls(
            store.root,
            kind=manifest.kind,
            delta=float(cfg.get("delta", 0.1)),
            normal_form=normal_form,
            env_transform=env_transform,
            n_features=manifest.n_features,
            metric=manifest.metric,
            window_lengths=tuple(cfg.get("window_lengths", (64,))),
            stride=int(cfg.get("stride", 16)),
            capacity=int(cfg.get("capacity", 50)),
            memory_budget_mb=memory_budget_mb,
            obs=obs,
        )

    # -- the streaming pass ------------------------------------------

    def _windows_of(self, seq: np.ndarray) -> Iterable[tuple[int, int]]:
        if self.kind == "melody":
            yield 0, int(seq.size)
            return
        for length in self.window_lengths:
            if seq.size < length:
                continue
            for start in range(0, seq.size - length + 1, self.stride):
                yield start, length

    def _flush(self, writer: GenerationWriter, chunk: _Chunk) -> float:
        """Feature-extract and append one staged chunk; returns margin."""
        rows = chunk.fill
        if not rows:
            return 0.0
        data = chunk.normalized[:rows]
        meta = chunk.meta[:rows]
        feats64 = self.env_transform.transform.transform_batch(data)
        feats32 = feats64.astype(np.float32)
        margin = float(np.abs(feats64 - feats32).max()) if rows else 0.0
        env_lower, env_upper = batch_envelope(data, self.band)
        writer.append(data, feats32, env_lower, env_upper, meta)
        chunk.fill = 0
        return margin

    def build(self, sequences: Iterable, ids: Iterable | None = None, *,
              base: CorpusStore | None = None,
              generation: int | None = None,
              activate: bool = True) -> tuple[CorpusStore, BuildReport]:
        """Stream *sequences* into a new (optionally incremental) generation.

        *sequences* may be any iterable of 1-D pitch series — it is
        consumed once and never materialised.  *ids* is a parallel
        iterable of sequence ids (defaults to positions offset by the
        base generation's sequence count).  With *base*, the previous
        generation's segments are inherited and only new rows are
        written.  The sealed generation is activated (``CURRENT``
        swapped) unless ``activate=False``.
        """
        started = monotonic_s()
        if generation is None:
            existing = list_generations(self.root)
            if base is not None:
                generation = max(base.generation + 1,
                                 (existing[-1] + 1) if existing else 0)
            else:
                generation = (existing[-1] + 1) if existing else 0
        writer = GenerationWriter(
            self.root, generation,
            normal_length=self.normal_length,
            n_features=self.n_features,
            metric=self.metric,
            kind=self.kind,
            config=self.store_config(),
            inherit_from=base,
        )
        base_sequences = len(base.ids) if base is not None else 0
        chunk = _Chunk(
            normalized=np.empty((self.chunk_rows, self.normal_length),
                                dtype=np.float32),
            meta=np.empty((self.chunk_rows, 3), dtype=np.int64),
        )
        chunk.peak_bytes = self.chunk_rows * self.row_bytes
        margin = 0.0
        flushes = 0
        seq_count = 0
        id_iter = iter(ids) if ids is not None else None
        with self.obs.span("ingest:build", kind=self.kind,
                           generation=generation):
            for offset, seq in enumerate(sequences):
                seq = np.asarray(seq, dtype=np.float64)
                if seq.ndim != 1:
                    raise ValueError("sequences must be 1-D arrays")
                if id_iter is not None:
                    try:
                        seq_id = next(id_iter)
                    except StopIteration:
                        raise ValueError(
                            "fewer ids than sequences"
                        ) from None
                else:
                    seq_id = base_sequences + offset
                writer.add_ids([seq_id])
                seq_row = base_sequences + seq_count
                seq_count += 1
                for start, length in self._windows_of(seq):
                    if self.kind == "melody":
                        window = seq
                    else:
                        window = seq[start:start + length]
                    normal = self.normal_form.apply(window)
                    row = chunk.fill
                    chunk.normalized[row] = normal  # float32 quantization
                    chunk.meta[row] = (seq_row, start, length)
                    chunk.fill += 1
                    if chunk.fill == self.chunk_rows:
                        margin = max(margin, self._flush(writer, chunk))
                        flushes += 1
            if id_iter is not None and next(id_iter, None) is not None:
                raise ValueError("more ids than sequences")
            if chunk.fill:
                margin = max(margin, self._flush(writer, chunk))
                flushes += 1
            if writer.rows == 0:
                raise StoreError(
                    "no rows extracted: every sequence is shorter than "
                    "the smallest window length"
                )
            store = writer.seal(feature_margin=margin)
            if activate:
                activate_generation(self.root, generation)
        build_s = monotonic_s() - started
        new_rows = store.rows - (base.rows if base is not None else 0)
        report = BuildReport(
            generation=generation,
            kind=self.kind,
            rows=store.rows,
            sequences=seq_count,
            build_s=build_s,
            rows_per_s=(new_rows / build_s) if build_s > 0 else float("inf"),
            flushes=flushes,
            chunk_rows=self.chunk_rows,
            peak_buffer_bytes=chunk.peak_bytes,
            budget_bytes=self.budget_bytes,
            feature_margin=store.feature_margin,
            activated=activate,
        )
        return store, report
