"""Background rebuild worker: drain the queue, build, swap, prewarm.

The coordinator owns the zero-downtime contract:

1. Drain the staging queue (producers keep adding; the index keeps
   serving — nothing here holds a lock the query path needs).
2. Build the next store generation with
   :class:`~repro.ingest.builder.StreamingIndexBuilder`, inheriting the
   live generation's segments by hard link (O(new rows) bytes written).
3. ``index.swap_generation(new_store)`` — the live
   :class:`~repro.index.WarpingIndex` rebinds its arrays and R*-tree to
   the new generation and bumps ``mutations`` exactly once *last*, so
   the serve tier's versioned result cache invalidates exactly once per
   swap and in-flight queries finish against the old arrays.
4. ``shard_manager.prewarm()`` (when sharded) respawns the worker fleet
   against the new generation off the serving path, bumping the shard
   epoch once; a dispatcher that raced the swap gets one transparent
   retry from :class:`~repro.serve.QBHService`.
5. Prune store generations past ``keep_generations``.

A failed rebuild (duplicate id, malformed series) drops that batch,
records ``ingest.failures_total``, and leaves the live index untouched.
"""

from __future__ import annotations

import threading
from typing import Any

from ..obs import OBS_DISABLED, Observability
from ..obs.clock import monotonic_s
from ..store import prune_generations
from .builder import BuildReport, StreamingIndexBuilder
from .queue import IngestQueue

__all__ = ["IngestCoordinator", "IngestError"]


class IngestError(RuntimeError):
    """Raised for ingest configuration errors (not per-batch failures)."""


class IngestCoordinator:
    """Owns the rebuild thread for one live store-backed index.

    Parameters
    ----------
    index:
        A store-backed :class:`~repro.index.WarpingIndex` (built with
        ``WarpingIndex.from_store``); the coordinator swaps new
        generations into it.
    queue:
        The :class:`IngestQueue` producers stage melodies into.
    min_batch:
        Rebuild only once this many melodies are pending (amortises the
        O(corpus) R*-tree repack over bigger batches).
    poll_interval_s:
        Worker wake-up cadence while below ``min_batch``.
    memory_budget_mb:
        Staging budget handed to the incremental builder.
    shard_manager:
        Optional :class:`~repro.shard.IndexShardManager` to prewarm
        after each swap (bumps the shard epoch off the serving path).
    keep_generations:
        Store generations retained after a swap (older ones pruned).
    """

    def __init__(self, index, queue: IngestQueue, *,
                 min_batch: int = 1,
                 poll_interval_s: float = 0.05,
                 memory_budget_mb: float = 64.0,
                 shard_manager=None,
                 keep_generations: int = 2,
                 obs: Observability | None = None) -> None:
        if getattr(index, "store", None) is None:
            raise IngestError(
                "IngestCoordinator requires a store-backed index "
                "(build it with WarpingIndex.from_store); in-memory "
                "indexes should use insert() directly"
            )
        if min_batch < 1:
            raise ValueError("min_batch must be >= 1")
        if keep_generations < 1:
            raise ValueError("keep_generations must be >= 1")
        self.index = index
        self.queue = queue
        self.obs = OBS_DISABLED if obs is None else obs
        self._min_batch = min_batch
        self._poll_interval_s = poll_interval_s
        self._memory_budget_mb = memory_budget_mb
        self._shard_manager = shard_manager
        self._keep_generations = keep_generations
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._rebuild_lock = threading.Lock()
        self._state_lock = threading.Lock()
        self._state = "idle"
        self._rebuilds_total = 0
        self._failures_total = 0
        self._rows_ingested_total = 0
        self._last_rebuild_s: float | None = None
        self._last_error: str | None = None

    # -- lifecycle ---------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None

    def start(self) -> "IngestCoordinator":
        if self._thread is not None:
            raise IngestError("coordinator already started")
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="ingest-coordinator", daemon=True
        )
        self._thread.start()
        return self

    def close(self, *, drain: bool = True, timeout_s: float = 30.0) -> None:
        """Stop the worker; with *drain*, rebuild any leftover items."""
        self._stop.set()
        self.queue.wake()
        if self._thread is not None:
            self._thread.join(timeout=timeout_s)
            self._thread = None
        if drain and self.queue.pending:
            self._rebuild_once()

    def __enter__(self) -> "IngestCoordinator":
        return self.start() if self._thread is None else self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- rebuild -----------------------------------------------------

    def rebuild_now(self) -> BuildReport | None:
        """Synchronously rebuild whatever is pending (even < min_batch)."""
        return self._rebuild_once()

    def _rebuild_once(self) -> BuildReport | None:
        with self._rebuild_lock:
            batch = self.queue.drain()
            if not batch:
                return None
            with self._state_lock:
                self._state = "rebuilding"
            started = monotonic_s()
            try:
                store = self.index.store
                with self.obs.span(
                    "ingest:rebuild",
                    rows_before=store.rows,
                    batch=len(batch),
                    generation_before=store.generation,
                ):
                    builder = StreamingIndexBuilder.for_store(
                        store,
                        memory_budget_mb=self._memory_budget_mb,
                        obs=self.obs,
                    )
                    new_store, report = builder.build(
                        (series for _, series in batch),
                        (item_id for item_id, _ in batch),
                        base=store,
                    )
                    self.index.swap_generation(new_store)
                    if self._shard_manager is not None:
                        self._shard_manager.prewarm()
                    prune_generations(new_store.root,
                                      keep=self._keep_generations)
                duration_s = monotonic_s() - started
                rows_added = report.rows - store.rows
                with self._state_lock:
                    self._rebuilds_total += 1
                    self._rows_ingested_total += rows_added
                    self._last_rebuild_s = duration_s
                    self._last_error = None
                self.obs.record_ingest_rebuild(
                    rows_added=rows_added,
                    rows_total=report.rows,
                    generation=report.generation,
                    pending=self.queue.pending,
                    duration_s=duration_s,
                )
                return report
            except Exception as exc:  # noqa: BLE001 — batch isolation
                with self._state_lock:
                    self._failures_total += 1
                    self._last_error = f"{type(exc).__name__}: {exc}"
                self.obs.record_ingest_failure()
                return None
            finally:
                with self._state_lock:
                    self._state = "idle"

    def _run(self) -> None:
        while not self._stop.is_set():
            if not self.queue.wait_for_items(self._poll_interval_s):
                continue
            if self._stop.is_set():
                break
            if self.queue.pending < self._min_batch:
                self._stop.wait(self._poll_interval_s)
                if self.queue.pending < self._min_batch:
                    continue
            self._rebuild_once()

    # -- introspection -----------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """Saturation-report section: rebuild state for operators."""
        with self._state_lock:
            state = self._state
            rebuilds = self._rebuilds_total
            failures = self._failures_total
            rows = self._rows_ingested_total
            last_s = self._last_rebuild_s
            last_error = self._last_error
        return {
            "state": state,
            "pending": self.queue.pending,
            "accepted_total": self.queue.accepted_total,
            "rebuilds_total": rebuilds,
            "failures_total": failures,
            "rows_ingested_total": rows,
            "generation": self.index.store.generation,
            "rows_total": self.index.store.rows,
            "min_batch": self._min_batch,
            "last_rebuild_s": last_s,
            "last_error": last_error,
        }
