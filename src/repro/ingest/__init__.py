"""Streaming ingest: bulk builds and zero-downtime incremental rebuilds.

Three pieces:

- :class:`StreamingIndexBuilder` — one streaming pass from raw pitch
  series to a sealed columnar-store generation (float32 columns, batched
  GEMINI feature extraction, vectorized k-envelopes) under a
  configurable memory ceiling.  10⁵–10⁶ subsequences build without
  ever materialising the corpus in float64.
- :class:`IngestQueue` — thread-safe staging buffer melodies are added
  to while the index keeps serving.
- :class:`IngestCoordinator` — background worker that drains the queue,
  builds the next store generation (inheriting the previous one's
  segments by hard link), atomically swaps it into the live
  :class:`~repro.index.WarpingIndex` (one ``mutations`` bump, so result
  caches invalidate exactly once), and prewarm-respawns the shard fleet.
"""

from .builder import BuildReport, StreamingIndexBuilder, batch_envelope
from .queue import IngestQueue
from .worker import IngestCoordinator, IngestError

__all__ = [
    "BuildReport",
    "IngestCoordinator",
    "IngestError",
    "IngestQueue",
    "StreamingIndexBuilder",
    "batch_envelope",
]
