"""Acoustic noise models for robustness testing.

Real hum queries arrive with room tone, mains hum, and background
chatter.  These generators produce the classic contaminations at a
chosen signal-to-noise ratio so the pitch tracker and the end-to-end
system can be tested against realistic microphone conditions.
"""

from __future__ import annotations

import numpy as np

__all__ = ["white_noise", "mains_hum", "babble_noise", "add_noise", "snr_db"]


def white_noise(n_samples: int, rng: np.random.Generator) -> np.ndarray:
    """Flat-spectrum room tone (unit RMS)."""
    if n_samples < 1:
        raise ValueError("n_samples must be >= 1")
    return rng.normal(0.0, 1.0, size=n_samples)


def mains_hum(n_samples: int, *, sample_rate: int = 8000,
              frequency: float = 50.0) -> np.ndarray:
    """Mains interference: the fundamental plus odd harmonics (unit RMS)."""
    if n_samples < 1:
        raise ValueError("n_samples must be >= 1")
    t = np.arange(n_samples) / sample_rate
    wave = (
        np.sin(2 * np.pi * frequency * t)
        + 0.5 * np.sin(2 * np.pi * 3 * frequency * t)
        + 0.25 * np.sin(2 * np.pi * 5 * frequency * t)
    )
    return wave / np.sqrt(np.mean(wave**2))


def babble_noise(n_samples: int, rng: np.random.Generator, *,
                 sample_rate: int = 8000, n_voices: int = 6) -> np.ndarray:
    """Background-chatter surrogate: several wandering tonal voices.

    Not speech, but spectrally voice-like — pitched energy moving
    through the tracker's search band, the hardest kind of noise for
    an autocorrelation pitch detector.  Unit RMS.
    """
    if n_samples < 1 or n_voices < 1:
        raise ValueError("n_samples and n_voices must be >= 1")
    t = np.arange(n_samples) / sample_rate
    wave = np.zeros(n_samples)
    for _ in range(n_voices):
        base = rng.uniform(100, 300)
        wobble = 20 * np.sin(2 * np.pi * rng.uniform(0.2, 1.5) * t
                             + rng.uniform(0, 6))
        envelope = 0.5 + 0.5 * np.sin(2 * np.pi * rng.uniform(0.3, 2.0) * t
                                      + rng.uniform(0, 6))
        phase = 2 * np.pi * np.cumsum(base + wobble) / sample_rate
        wave += envelope * np.sin(phase)
    return wave / np.sqrt(np.mean(wave**2))


def add_noise(signal, noise, *, snr_db_target: float) -> np.ndarray:
    """Mix *noise* into *signal* at the requested SNR (dB).

    The noise is rescaled so that ``10 log10(P_signal / P_noise)``
    equals *snr_db_target*; the signal is untouched.
    """
    sig = np.asarray(signal, dtype=np.float64)
    noi = np.asarray(noise, dtype=np.float64)
    if sig.shape != noi.shape:
        raise ValueError(
            f"signal and noise shapes differ: {sig.shape} vs {noi.shape}"
        )
    p_signal = float(np.mean(sig**2))
    p_noise = float(np.mean(noi**2))
    if p_signal <= 0 or p_noise <= 0:
        raise ValueError("signal and noise must have positive power")
    scale = np.sqrt(p_signal / (p_noise * 10 ** (snr_db_target / 10.0)))
    return sig + scale * noi


def snr_db(signal, noise) -> float:
    """Measured signal-to-noise ratio in dB."""
    p_signal = float(np.mean(np.asarray(signal, dtype=np.float64) ** 2))
    p_noise = float(np.mean(np.asarray(noise, dtype=np.float64) ** 2))
    if p_signal <= 0 or p_noise <= 0:
        raise ValueError("signal and noise must have positive power")
    return 10.0 * np.log10(p_signal / p_noise)
