"""Humming substrate: singer models, audio synthesis, pitch tracking."""

from .degrade import (
    DEFAULT_SEVERITIES,
    SCENARIOS,
    DegradationScenario,
    degrade,
    scenario_names,
)
from .noise import add_noise, babble_noise, mains_hum, snr_db, white_noise
from .online import OnlinePitchTracker
from .pitch_tracking import PitchTrack, track_pitch
from .segmentation import segment_notes
from .singer import SingerProfile, hum_melody
from .synthesis import synthesize_melody, synthesize_pitch_series

__all__ = [
    "DEFAULT_SEVERITIES",
    "SCENARIOS",
    "DegradationScenario",
    "degrade",
    "scenario_names",
    "add_noise",
    "babble_noise",
    "mains_hum",
    "snr_db",
    "white_noise",
    "OnlinePitchTracker",
    "PitchTrack",
    "track_pitch",
    "segment_notes",
    "SingerProfile",
    "hum_melody",
    "synthesize_melody",
    "synthesize_pitch_series",
]
