"""Note segmentation from a pitch contour — the error-prone step.

The contour (string) approach needs discrete notes, and the paper's
central criticism is that "no good algorithm is known to segment a time
series of pitches into discrete notes".  This module implements the
standard heuristics anyway — split on unvoiced gaps and on sustained
pitch jumps — because the Table 2 comparison needs a realistic
note-based front end whose mistakes propagate into the contour method.
"""

from __future__ import annotations

import numpy as np

from ..music.melody import Melody, Note

__all__ = ["segment_notes"]


def segment_notes(
    pitches,
    *,
    frame_rate: int = 100,
    min_note_frames: int = 4,
    pitch_jump: float = 0.8,
    jump_sustain_frames: int = 3,
    beat_seconds: float = 0.5,
) -> Melody:
    """Segment a frame-level pitch contour into notes.

    Parameters
    ----------
    pitches:
        MIDI pitch per frame; ``NaN`` marks unvoiced frames (gaps).
    frame_rate:
        Frames per second.
    min_note_frames:
        Segments shorter than this are merged into their neighbour
        (or dropped if isolated) — they are usually tracking glitches.
    pitch_jump:
        A change of at least this many semitones...
    jump_sustain_frames:
        ...sustained for this many frames starts a new note.
    beat_seconds:
        Seconds per beat used to express durations in beats.

    Returns
    -------
    Melody
        Median pitch and duration of every detected note.

    Raises
    ------
    ValueError
        If no notes are detected.
    """
    contour = np.asarray(pitches, dtype=np.float64)
    if contour.ndim != 1 or contour.size == 0:
        raise ValueError("pitch contour must be a non-empty 1-D array")
    if min_note_frames < 1 or jump_sustain_frames < 1:
        raise ValueError("frame thresholds must be >= 1")

    # Pass 1: split on voicing boundaries.
    voiced = np.isfinite(contour)
    segments: list[tuple[int, int]] = []
    start = None
    for i, flag in enumerate(voiced):
        if flag and start is None:
            start = i
        elif not flag and start is not None:
            segments.append((start, i))
            start = None
    if start is not None:
        segments.append((start, contour.size))

    # Pass 2: split voiced segments on sustained pitch jumps.
    final: list[tuple[int, int]] = []
    for seg_start, seg_end in segments:
        anchor = seg_start
        reference = contour[seg_start]
        i = seg_start + 1
        while i < seg_end:
            if abs(contour[i] - reference) >= pitch_jump:
                sustain_end = min(i + jump_sustain_frames, seg_end)
                window = contour[i:sustain_end]
                if window.size and np.all(
                    np.abs(window - reference) >= pitch_jump * 0.75
                ):
                    final.append((anchor, i))
                    anchor = i
                    reference = contour[i]
                    i = sustain_end
                    continue
            # Track slow drift so vibrato does not shatter the note.
            reference = 0.9 * reference + 0.1 * contour[i]
            i += 1
        final.append((anchor, seg_end))

    # Pass 3: drop or absorb fragments shorter than min_note_frames.
    notes: list[Note] = []
    for seg_start, seg_end in final:
        length = seg_end - seg_start
        if length < min_note_frames:
            continue
        pitch = float(np.median(contour[seg_start:seg_end]))
        duration_beats = (length / frame_rate) / beat_seconds
        notes.append(Note(pitch=pitch, duration=duration_beats))
    if not notes:
        raise ValueError("no notes detected in the pitch contour")
    return Melody(notes, name="segmented")
