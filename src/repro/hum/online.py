"""Streaming pitch tracking.

The offline tracker (:func:`repro.hum.pitch_tracking.track_pitch`)
needs the whole recording; a live query-by-humming frontend gets audio
in small buffers.  :class:`OnlinePitchTracker` accepts arbitrary-sized
chunks via :meth:`feed` and emits pitch frames as soon as their
analysis windows complete, with exactly the same per-frame results as
the offline tracker (modulo the offline median filter, which needs
future frames; a causal variant is applied instead).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..music.melody import hz_to_midi
from .pitch_tracking import _frame_pitch_hz

__all__ = ["OnlinePitchTracker"]


class OnlinePitchTracker:
    """Incremental pitch tracker over streamed audio.

    Parameters match :func:`~repro.hum.pitch_tracking.track_pitch`;
    ``median_width`` here is a *causal* running median over the last
    frames (an online filter cannot see the future).

    Usage::

        tracker = OnlinePitchTracker()
        for chunk in microphone():
            for pitch in tracker.feed(chunk):
                ...  # MIDI pitch or NaN, one per 10 ms frame
        pitches = tracker.pitch_series()
    """

    def __init__(
        self,
        *,
        sample_rate: int = 8000,
        frame_ms: float = 10.0,
        window_ms: float = 32.0,
        fmin: float = 80.0,
        fmax: float = 700.0,
        energy_threshold: float = 0.01,
        periodicity_threshold: float = 0.5,
        median_width: int = 5,
    ) -> None:
        if not 0 < fmin < fmax:
            raise ValueError("need 0 < fmin < fmax")
        if median_width < 1:
            raise ValueError("median width must be >= 1")
        self.sample_rate = sample_rate
        self.hop = max(1, int(round(sample_rate * frame_ms / 1000.0)))
        self.window = max(self.hop, int(round(sample_rate * window_ms / 1000.0)))
        self._lag_min = max(1, int(sample_rate / fmax))
        self._lag_max = int(np.ceil(sample_rate / fmin))
        self._fmin = fmin
        self._fmax = fmax
        self._energy_threshold = energy_threshold
        self._periodicity_threshold = periodicity_threshold
        self._median_width = median_width
        self._buffer = np.zeros(0)
        self._recent_voiced: deque[float] = deque(maxlen=median_width)
        self._history: list[float] = []

    @property
    def frames_emitted(self) -> int:
        return len(self._history)

    def feed(self, samples) -> list[float]:
        """Consume an audio chunk; return newly completed pitch frames.

        Each returned value is a MIDI pitch or ``NaN`` (unvoiced), in
        frame order.  Chunks may be any size, including empty.
        """
        chunk = np.asarray(samples, dtype=np.float64)
        if chunk.ndim != 1:
            raise ValueError("audio chunks must be 1-D")
        self._buffer = np.concatenate([self._buffer, chunk])
        emitted: list[float] = []
        while self._buffer.size >= self.window:
            frame = self._buffer[: self.window]
            emitted.append(self._analyse(frame))
            self._buffer = self._buffer[self.hop :]
        self._history.extend(emitted)
        return emitted

    def _analyse(self, frame: np.ndarray) -> float:
        rms = float(np.sqrt(np.mean(frame * frame)))
        if rms < self._energy_threshold:
            return float("nan")
        freq = _frame_pitch_hz(
            frame, self.sample_rate, self._lag_min, self._lag_max,
            self._periodicity_threshold,
        )
        if np.isnan(freq) or not self._fmin * 0.9 <= freq <= self._fmax * 1.1:
            return float("nan")
        pitch = hz_to_midi(freq)
        if self._median_width > 1:
            self._recent_voiced.append(pitch)
            return float(np.median(self._recent_voiced))
        return float(pitch)

    def pitch_series(self) -> np.ndarray:
        """All voiced frames emitted so far (the query-ready series)."""
        arr = np.asarray(self._history, dtype=np.float64)
        return arr[np.isfinite(arr)]

    def pitches(self) -> np.ndarray:
        """All frames emitted so far, NaN where unvoiced."""
        return np.asarray(self._history, dtype=np.float64)

    def reset(self) -> None:
        """Forget all buffered audio and emitted frames."""
        self._buffer = np.zeros(0)
        self._recent_voiced.clear()
        self._history.clear()
