"""Hum audio synthesis: pitch series / melody → mono waveform.

The front half of the paper's pipeline starts from microphone audio.
To exercise that path offline we render hums as harmonic tones with a
soft amplitude envelope and breath noise — close enough to a sung "la"
for an autocorrelation pitch tracker, which is the point.
"""

from __future__ import annotations

import numpy as np

from ..music.melody import Melody, midi_to_hz

__all__ = ["synthesize_pitch_series", "synthesize_melody"]

#: Relative amplitudes of the voice-like harmonic stack.
_HARMONICS = (1.0, 0.55, 0.3, 0.12)


def synthesize_pitch_series(
    pitches,
    *,
    frame_rate: int = 100,
    sample_rate: int = 8000,
    amplitude: float = 0.6,
    noise_level: float = 0.01,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Render a frame-level pitch contour into audio.

    Parameters
    ----------
    pitches:
        MIDI pitch per frame; ``NaN`` frames render as silence.
    frame_rate:
        Pitch frames per second (10 ms frames = 100).
    sample_rate:
        Output sample rate in Hz.
    amplitude:
        Peak amplitude of the voiced parts, in ``(0, 1]``.
    noise_level:
        Breath-noise floor added everywhere.

    Returns
    -------
    numpy.ndarray
        Float waveform in ``[-1, 1]``.
    """
    contour = np.asarray(pitches, dtype=np.float64)
    if contour.ndim != 1 or contour.size == 0:
        raise ValueError("pitch contour must be a non-empty 1-D array")
    if not 0 < amplitude <= 1:
        raise ValueError(f"amplitude must be in (0, 1], got {amplitude}")
    if rng is None:
        rng = np.random.default_rng(0)
    samples_per_frame = sample_rate // frame_rate
    if samples_per_frame < 8:
        raise ValueError("sample_rate must be at least 8x frame_rate")
    n_samples = contour.size * samples_per_frame

    voiced = np.isfinite(contour)
    freq_frames = np.where(voiced, midi_to_hz(np.where(voiced, contour, 69.0)), 0.0)
    # Per-sample instantaneous frequency by linear interpolation.
    frame_times = (np.arange(contour.size) + 0.5) / frame_rate
    sample_times = np.arange(n_samples) / sample_rate
    freq = np.interp(sample_times, frame_times, freq_frames)
    gate = np.interp(sample_times, frame_times, voiced.astype(np.float64))
    phase = 2 * np.pi * np.cumsum(freq) / sample_rate

    wave = np.zeros(n_samples)
    for overtone, weight in enumerate(_HARMONICS, start=1):
        wave += weight * np.sin(overtone * phase)
    wave *= amplitude / sum(_HARMONICS)
    wave *= gate
    wave += noise_level * rng.normal(size=n_samples)
    return np.clip(wave, -1.0, 1.0)


def synthesize_melody(
    melody: Melody,
    *,
    tempo_bpm: float = 100.0,
    sample_rate: int = 8000,
    gap_fraction: float = 0.08,
    amplitude: float = 0.6,
    noise_level: float = 0.01,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Render a melody as discretely articulated notes.

    Each note ends with a short silent gap (*gap_fraction* of its
    length), like a singer articulating "ta-ta-ta" — the input style
    note-segmentation systems require.
    """
    if tempo_bpm <= 0:
        raise ValueError(f"tempo must be positive, got {tempo_bpm}")
    if not 0 <= gap_fraction < 1:
        raise ValueError(f"gap fraction must be in [0, 1), got {gap_fraction}")
    frame_rate = 100
    seconds_per_beat = 60.0 / tempo_bpm
    frames: list[float] = []
    for note in melody:
        n_frames = max(2, int(round(note.duration * seconds_per_beat * frame_rate)))
        n_gap = int(round(n_frames * gap_fraction))
        n_voiced = max(1, n_frames - n_gap)
        frames.extend([note.pitch] * n_voiced)
        frames.extend([np.nan] * n_gap)
    return synthesize_pitch_series(
        np.array(frames),
        frame_rate=frame_rate,
        sample_rate=sample_rate,
        amplitude=amplitude,
        noise_level=noise_level,
        rng=rng,
    )
