"""Autocorrelation pitch tracking (Section 3.1's front end).

The acoustic input is cut into 10 ms frames; each frame is resolved to
a pitch with a normalised-autocorrelation detector in the style of
Tolonen & Karjalainen [27]: window the signal, autocorrelate, pick the
strongest peak in the plausible period range, refine it with parabolic
interpolation, and gate on energy + periodicity for voicing.  The
result is a pitch time series with unvoiced frames marked; the query
system simply drops them, as the paper does with silence.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..music.melody import hz_to_midi

__all__ = ["PitchTrack", "track_pitch"]


@dataclass(frozen=True)
class PitchTrack:
    """Frame-level pitch-tracking output.

    Attributes
    ----------
    pitches:
        MIDI pitch per frame (``NaN`` where unvoiced).
    voiced:
        Boolean mask of voiced frames.
    frame_rate:
        Frames per second.
    """

    pitches: np.ndarray
    voiced: np.ndarray
    frame_rate: int

    def __len__(self) -> int:
        return int(self.pitches.size)

    def pitch_series(self) -> np.ndarray:
        """Voiced pitches only — the series the query system consumes."""
        return self.pitches[self.voiced].copy()

    @property
    def voiced_fraction(self) -> float:
        if self.pitches.size == 0:
            return 0.0
        return float(self.voiced.mean())


def _frame_pitch_hz(
    frame: np.ndarray,
    sample_rate: int,
    lag_min: int,
    lag_max: int,
    periodicity_threshold: float,
) -> float:
    """Pitch of one window in Hz, or NaN if unvoiced.

    Uses the *unbiased* autocorrelation (each lag divided by the
    number of overlapping samples) so the peak is not dragged toward
    shorter lags by the overlap taper, and picks the smallest lag
    within 15% of the strongest peak so the fundamental wins over its
    subharmonics (octave-error suppression).
    """
    frame = frame - frame.mean()
    energy = float(np.dot(frame, frame))
    if energy <= 1e-10:
        return np.nan
    n = frame.size
    # Full autocorrelation via numpy (O(n^2) but windows are tiny).
    corr = np.correlate(frame, frame, mode="full")[n - 1 :]
    overlap = n - np.arange(n, dtype=np.float64)
    corr_unbiased = corr / overlap
    if lag_max >= n:
        lag_max = n - 1
    if lag_max <= lag_min:
        return np.nan
    segment = corr_unbiased[lag_min : lag_max + 1]
    peak_value = float(segment.max())
    # Normalised peak height gates voicing.
    if peak_value / corr_unbiased[0] < periodicity_threshold:
        return np.nan
    near_peak = np.nonzero(segment >= 0.85 * peak_value)[0]
    first = int(near_peak[0])
    # Walk from the first crossing up to its local maximum — the true
    # apex of the earliest (fundamental) peak.
    while first + 1 < segment.size and segment[first + 1] >= segment[first]:
        first += 1
    best = first + lag_min
    # Parabolic interpolation around the peak for sub-sample lag.
    lag = float(best)
    if 0 < best < n - 1:
        left = corr_unbiased[best - 1]
        centre = corr_unbiased[best]
        right = corr_unbiased[best + 1]
        denom = left - 2 * centre + right
        if abs(denom) > 1e-12:
            lag += 0.5 * (left - right) / denom
    if lag <= 0:
        return np.nan
    return sample_rate / lag


def track_pitch(
    waveform,
    *,
    sample_rate: int = 8000,
    frame_ms: float = 10.0,
    window_ms: float = 32.0,
    fmin: float = 80.0,
    fmax: float = 700.0,
    energy_threshold: float = 0.01,
    periodicity_threshold: float = 0.5,
    median_width: int = 5,
) -> PitchTrack:
    """Track the pitch of a mono waveform.

    Parameters
    ----------
    waveform:
        Audio samples in ``[-1, 1]``.
    sample_rate:
        Samples per second.
    frame_ms:
        Hop between frames (the paper's 10 ms).
    window_ms:
        Analysis window length (must cover at least two periods of
        *fmin*).
    fmin, fmax:
        Plausible pitch range of humming (80-700 Hz covers hummed
        melodies brought into a comfortable vocal register).
    energy_threshold:
        RMS below this is unvoiced.
    periodicity_threshold:
        Normalised autocorrelation peak below this is unvoiced.
    median_width:
        Width of the post-hoc median filter that removes octave blips
        (set 1 to disable).
    """
    audio = np.asarray(waveform, dtype=np.float64)
    if audio.ndim != 1 or audio.size == 0:
        raise ValueError("waveform must be a non-empty 1-D array")
    if not 0 < fmin < fmax:
        raise ValueError("need 0 < fmin < fmax")
    hop = max(1, int(round(sample_rate * frame_ms / 1000.0)))
    window = max(hop, int(round(sample_rate * window_ms / 1000.0)))
    if window > audio.size:
        window = audio.size
    lag_min = max(1, int(sample_rate / fmax))
    lag_max = int(np.ceil(sample_rate / fmin))

    pitches = []
    for start in range(0, audio.size - window + 1, hop):
        # Rectangular frames: the unbiased autocorrelation inside the
        # detector compensates the overlap taper exactly, whereas a
        # shaped window would re-introduce a short-lag bias.
        frame = audio[start : start + window]
        rms = float(np.sqrt(np.mean(frame * frame)))
        if rms < energy_threshold:
            pitches.append(np.nan)
            continue
        freq = _frame_pitch_hz(
            frame, sample_rate, lag_min, lag_max, periodicity_threshold
        )
        if np.isnan(freq) or not fmin * 0.9 <= freq <= fmax * 1.1:
            pitches.append(np.nan)
        else:
            pitches.append(hz_to_midi(freq))
    contour = np.asarray(pitches)

    if median_width > 1 and contour.size:
        contour = _voiced_median_filter(contour, median_width)
    voiced = np.isfinite(contour)
    frame_rate = int(round(1000.0 / frame_ms))
    return PitchTrack(pitches=contour, voiced=voiced, frame_rate=frame_rate)


def _voiced_median_filter(contour: np.ndarray, width: int) -> np.ndarray:
    """Median-filter voiced frames, leaving unvoiced gaps in place."""
    result = contour.copy()
    half = width // 2
    voiced_idx = np.nonzero(np.isfinite(contour))[0]
    voiced_vals = contour[voiced_idx]
    for pos in range(voiced_idx.size):
        lo = max(0, pos - half)
        hi = min(voiced_idx.size, pos + half + 1)
        result[voiced_idx[pos]] = np.median(voiced_vals[lo:hi])
    return result
