"""Singer models: how real humming deviates from the score.

The paper evaluates with hum queries from "better" and "poor" singers.
This module reproduces those inputs synthetically by injecting exactly
the inaccuracies Section 3.3 enumerates:

1. **absolute pitch** — a global transposition (almost nobody has
   perfect pitch);
2. **tempo** — a global time-scaling between half and double speed;
3. **relative pitch** — per-note interval errors plus a slow drift;
4. **local timing** — per-note duration jitter (the thing DTW absorbs).

A :class:`SingerProfile` holds the error magnitudes; two calibrated
profiles, :meth:`SingerProfile.better` and :meth:`SingerProfile.poor`,
correspond to the paper's two singer groups.  :func:`hum_melody`
renders a melody through a profile into a pitch time series sampled at
10 ms frames, i.e. what the pitch tracker of Section 3.1 would output.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..music.melody import Melody

__all__ = ["SingerProfile", "hum_melody"]


@dataclass(frozen=True)
class SingerProfile:
    """Error magnitudes of a (synthetic) hummer.

    All pitch quantities are in semitones; all timing quantities are
    dimensionless factors.

    Attributes
    ----------
    transpose_range:
        Uniform range of the global transposition.
    tempo_range:
        Uniform range of the global tempo factor (1.0 = true tempo).
    note_pitch_std:
        Per-note interval error.
    drift_std:
        Per-note random-walk drift of the reference pitch.
    duration_jitter_std:
        Log-normal sigma of per-note duration (local timing error).
    frame_noise_std:
        Within-note frame-to-frame pitch wobble.
    vibrato_depth / vibrato_rate_hz:
        Sinusoidal vibrato applied inside each note.
    drop_note_prob:
        Probability of forgetting a note entirely (poor singers skip
        or slur notes; the first and last note are never dropped).
    voice_register:
        When set, the singer transposes the melody so its median pitch
        lands uniformly in this MIDI range — how people actually bring
        a tune into their own voice.  Overrides *transpose_range*.
    glide_fraction:
        Portamento: the fraction of each note's frames spent gliding
        from the previous pitch.  Harmless to DTW matching but fatal
        to note segmentation — a key reason the contour pipeline
        underperforms on real humming.
    frame_rate:
        Pitch frames per second (the paper uses 10 ms frames = 100).
    """

    transpose_range: tuple[float, float] = (-5.0, 5.0)
    tempo_range: tuple[float, float] = (0.7, 1.4)
    note_pitch_std: float = 0.3
    drift_std: float = 0.05
    duration_jitter_std: float = 0.15
    frame_noise_std: float = 0.08
    vibrato_depth: float = 0.15
    vibrato_rate_hz: float = 5.5
    drop_note_prob: float = 0.0
    voice_register: tuple[float, float] | None = None
    glide_fraction: float = 0.0
    frame_rate: int = 100

    def __post_init__(self) -> None:
        if self.tempo_range[0] <= 0:
            raise ValueError("tempo factors must be positive")
        if self.frame_rate < 1:
            raise ValueError("frame rate must be >= 1")
        for name in ("note_pitch_std", "drift_std", "duration_jitter_std",
                     "frame_noise_std", "vibrato_depth"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        if not 0.0 <= self.drop_note_prob < 1.0:
            raise ValueError("drop_note_prob must be in [0, 1)")
        if not 0.0 <= self.glide_fraction < 1.0:
            raise ValueError("glide_fraction must be in [0, 1)")

    @classmethod
    def perfect(cls) -> "SingerProfile":
        """A machine: no errors at all (useful in tests)."""
        return cls(
            transpose_range=(0.0, 0.0),
            tempo_range=(1.0, 1.0),
            note_pitch_std=0.0,
            drift_std=0.0,
            duration_jitter_std=0.0,
            frame_noise_std=0.0,
            vibrato_depth=0.0,
        )

    @classmethod
    def better(cls) -> "SingerProfile":
        """The paper's "better singers": right notes, imperfect timing."""
        return cls(
            transpose_range=(-4.0, 4.0),
            tempo_range=(0.8, 1.25),
            note_pitch_std=0.25,
            drift_std=0.04,
            duration_jitter_std=0.12,
            frame_noise_std=0.06,
            vibrato_depth=0.12,
            voice_register=(54.0, 64.0),
            glide_fraction=0.3,
        )

    @classmethod
    def poor(cls) -> "SingerProfile":
        """The paper's "poor singers" (e.g. one of the authors)."""
        return cls(
            transpose_range=(-6.0, 6.0),
            tempo_range=(0.55, 1.8),
            note_pitch_std=1.1,
            drift_std=0.22,
            duration_jitter_std=0.5,
            frame_noise_std=0.15,
            vibrato_depth=0.25,
            drop_note_prob=0.1,
            voice_register=(52.0, 66.0),
            glide_fraction=0.45,
        )


def hum_melody(
    melody: Melody,
    profile: SingerProfile,
    rng: np.random.Generator,
    *,
    tempo_bpm: float = 100.0,
) -> np.ndarray:
    """Render *melody* through a singer into a pitch time series.

    Returns MIDI pitch values sampled at ``profile.frame_rate`` frames
    per second — the same representation the pitch tracker produces
    from microphone audio, so it can be fed straight to the query
    system.
    """
    if tempo_bpm <= 0:
        raise ValueError(f"tempo must be positive, got {tempo_bpm}")
    if profile.voice_register is not None:
        register = rng.uniform(*profile.voice_register)
        transpose = register - float(np.median(melody.pitches()))
    else:
        transpose = rng.uniform(*profile.transpose_range)
    tempo = rng.uniform(*profile.tempo_range)
    seconds_per_beat = 60.0 / tempo_bpm / tempo

    frames: list[np.ndarray] = []
    drift = 0.0
    phase = rng.uniform(0, 2 * np.pi)
    last_index = len(melody) - 1
    for position, note in enumerate(melody):
        if (
            profile.drop_note_prob > 0
            and 0 < position < last_index
            and rng.random() < profile.drop_note_prob
        ):
            continue
        drift += rng.normal(0.0, profile.drift_std)
        sung_pitch = note.pitch + transpose + drift
        if profile.note_pitch_std > 0:
            sung_pitch += rng.normal(0.0, profile.note_pitch_std)
        duration_s = note.duration * seconds_per_beat
        if profile.duration_jitter_std > 0:
            duration_s *= rng.lognormal(0.0, profile.duration_jitter_std)
        n_frames = max(2, int(round(duration_s * profile.frame_rate)))
        t = np.arange(n_frames) / profile.frame_rate
        pitch = np.full(n_frames, sung_pitch)
        if profile.glide_fraction > 0 and frames:
            previous_pitch = frames[-1][-1]
            n_glide = min(n_frames - 1, int(round(n_frames * profile.glide_fraction)))
            if n_glide > 0:
                ramp = 0.5 * (1 - np.cos(np.linspace(0, np.pi, n_glide)))
                pitch[:n_glide] = previous_pitch + ramp * (
                    sung_pitch - previous_pitch
                )
        if profile.vibrato_depth > 0:
            pitch += profile.vibrato_depth * np.sin(
                2 * np.pi * profile.vibrato_rate_hz * t + phase
            )
            phase += 2 * np.pi * profile.vibrato_rate_hz * n_frames / profile.frame_rate
        if profile.frame_noise_std > 0:
            pitch += rng.normal(0.0, profile.frame_noise_std, size=n_frames)
        frames.append(pitch)
    return np.concatenate(frames)
