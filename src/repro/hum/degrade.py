"""Parameterized hum-degradation scenarios for quality workloads.

The quality-observability layer needs queries that are *wrong in a
known way*: a clean hum of a known database melody, perturbed by one
named error mode at a controlled severity, so recall@k can be charted
per scenario × severity (the scenario matrix of
``repro obs report --scenarios``).

Each scenario is a pure function on a frame-level pitch series (MIDI
semitones, 100 frames/s — the output of
:func:`repro.hum.singer.hum_melody` or the pitch tracker).  All are:

* **named** — looked up in :data:`SCENARIOS` by string, so CLI flags,
  span attributes, and bench history rows agree on identity;
* **seeded** — every random choice comes from the supplied generator,
  so a (scenario, severity, seed) triple reproduces byte-identically;
* **severity-scaled** — ``severity`` in ``[0, 1]`` interpolates from
  "no perturbation" (0.0 returns a copy) to the worst case the mode
  models, e.g. a ±6-semitone transposition or 40% tempo error.

The modes mirror how real hums fail (ROADMAP item 5): singers
transpose and drift, rush or drag the tempo, drop or split notes, and
pitch trackers jitter and octave-flip.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

__all__ = [
    "DegradationScenario",
    "SCENARIOS",
    "DEFAULT_SEVERITIES",
    "degrade",
    "scenario_names",
]

#: Severity grid used by the scenario matrix when none is given.
DEFAULT_SEVERITIES = (0.25, 0.5, 1.0)

# Worst-case (severity = 1.0) magnitudes for each error mode.
_MAX_TRANSPOSE_SEMITONES = 6.0   # global offset, sign chosen per query
_MAX_DRIFT_SEMITONES = 2.0       # slow intonation ramp over the clip
_MAX_TEMPO_ERROR = 0.4           # ±40% global tempo error
_MAX_DROPPED_SEGMENTS = 3        # contiguous chunks removed
_MAX_SPLIT_EVENTS = 4            # spurious note-boundary insertions
_MAX_JITTER_STD = 0.8            # per-frame Gaussian noise, semitones
_MAX_OCTAVE_ERROR_PROB = 0.02    # per-frame ±12-semitone flips


def _as_pitches(pitch_series) -> np.ndarray:
    pitches = np.asarray(pitch_series, dtype=float)
    if pitches.ndim != 1 or pitches.size < 2:
        raise ValueError("pitch series must be 1-D with at least 2 frames")
    return pitches


def _transposition(pitches: np.ndarray, severity: float,
                   rng: np.random.Generator) -> np.ndarray:
    """Global key error plus a slow intonation drift ramp."""
    sign = rng.choice((-1.0, 1.0))
    offset = sign * severity * _MAX_TRANSPOSE_SEMITONES
    drift = (rng.choice((-1.0, 1.0)) * severity * _MAX_DRIFT_SEMITONES
             * np.linspace(0.0, 1.0, pitches.size))
    return pitches + offset + drift


def _tempo(pitches: np.ndarray, severity: float,
           rng: np.random.Generator) -> np.ndarray:
    """Global tempo error: uniformly stretch or compress the clip."""
    factor = 1.0 + rng.choice((-1.0, 1.0)) * severity * _MAX_TEMPO_ERROR
    n_out = max(2, int(round(pitches.size * factor)))
    src = np.linspace(0.0, pitches.size - 1.0, n_out)
    return np.interp(src, np.arange(pitches.size), pitches)


def _note_drop(pitches: np.ndarray, severity: float,
               rng: np.random.Generator) -> np.ndarray:
    """Forgotten notes: remove contiguous chunks of the performance."""
    n_drops = int(round(severity * _MAX_DROPPED_SEGMENTS))
    if n_drops == 0:
        return pitches.copy()
    out = pitches
    chunk = max(2, pitches.size // 12)
    for _ in range(n_drops):
        if out.size - chunk < 2:
            break
        start = int(rng.integers(0, out.size - chunk))
        out = np.delete(out, slice(start, start + chunk))
    return out


def _note_split(pitches: np.ndarray, severity: float,
                rng: np.random.Generator) -> np.ndarray:
    """Spurious note boundaries: short off-pitch ornaments inserted
    where the singer broke one note into several."""
    n_splits = int(round(severity * _MAX_SPLIT_EVENTS))
    if n_splits == 0:
        return pitches.copy()
    out = pitches.copy()
    width = max(2, out.size // 20)
    for _ in range(n_splits):
        start = int(rng.integers(0, max(1, out.size - width)))
        step = rng.choice((-2.0, -1.0, 1.0, 2.0))
        out[start:start + width] += step
    return out


def _jitter(pitches: np.ndarray, severity: float,
            rng: np.random.Generator) -> np.ndarray:
    """Pitch-tracker noise: per-frame jitter plus rare octave flips."""
    noisy = pitches + rng.normal(
        0.0, severity * _MAX_JITTER_STD, size=pitches.size)
    flips = rng.random(pitches.size) < severity * _MAX_OCTAVE_ERROR_PROB
    noisy[flips] += rng.choice((-12.0, 12.0), size=int(flips.sum()))
    return noisy


@dataclass(frozen=True)
class DegradationScenario:
    """One named hum error mode.

    ``apply(pitches, severity, rng)`` returns a new pitch series; the
    input is never modified.
    """

    name: str
    description: str
    apply: Callable[[np.ndarray, float, np.random.Generator], np.ndarray] \
        = field(repr=False)

    def __call__(self, pitch_series, severity: float,
                 rng: np.random.Generator) -> np.ndarray:
        pitches = _as_pitches(pitch_series)
        if not 0.0 <= severity <= 1.0:
            raise ValueError(f"severity must be in [0, 1], got {severity}")
        if severity == 0.0:
            return pitches.copy()
        return self.apply(pitches, severity, rng)


SCENARIOS: dict[str, DegradationScenario] = {
    s.name: s
    for s in (
        DegradationScenario(
            "transposition",
            "global key offset plus slow intonation drift",
            _transposition,
        ),
        DegradationScenario(
            "tempo",
            "global tempo error (uniform stretch/compress)",
            _tempo,
        ),
        DegradationScenario(
            "note_drop",
            "forgotten notes (contiguous chunks removed)",
            _note_drop,
        ),
        DegradationScenario(
            "note_split",
            "spurious note boundaries (short off-pitch ornaments)",
            _note_split,
        ),
        DegradationScenario(
            "jitter",
            "pitch-tracker noise and rare octave flips",
            _jitter,
        ),
    )
}


def scenario_names() -> tuple[str, ...]:
    """Registry order of the named scenarios."""
    return tuple(SCENARIOS)


def degrade(pitch_series, scenario: str, severity: float, *,
            seed: int | None = None,
            rng: np.random.Generator | None = None) -> np.ndarray:
    """Apply one named scenario at *severity* to a pitch series.

    Pass either *seed* (fresh deterministic generator) or an existing
    *rng* — not both; with neither, an unseeded generator is used.
    """
    try:
        mode = SCENARIOS[scenario]
    except KeyError:
        known = ", ".join(SCENARIOS)
        raise ValueError(
            f"unknown scenario {scenario!r} (known: {known})") from None
    if seed is not None and rng is not None:
        raise ValueError("pass either seed or rng, not both")
    if rng is None:
        rng = np.random.default_rng(seed)
    return mode(pitch_series, severity, rng)
