"""Admission control: caps, deadlines, and retry/backoff for shedding.

A serving layer that accepts every request melts down the moment offered
load exceeds capacity — queues grow without bound, every request's
latency diverges, and nobody gets an answer.  The serving discipline
here is the standard one:

* **Caps** (:class:`AdmissionPolicy`) — a bounded request queue and an
  in-flight ceiling.  A request arriving past either cap is *shed*
  immediately with a ``retry_after_s`` hint: an honest, cheap "try
  again shortly" instead of an open-ended wait.
* **Deadlines** — each request carries an absolute deadline; the
  engine's cooperative-cancellation checkpoints
  (:class:`~repro.engine.errors.QueryAborted`) cut work short when it
  passes, and the outcome is ``deadline_exceeded`` — never a partial
  or wrong answer.  :meth:`AdmissionPolicy.resolve_deadline` applies
  the policy default when the caller gave none.
* **Retry with backoff** (:class:`RetryPolicy`,
  :func:`submit_with_retry`) — shed requests back off exponentially
  and deterministically (no jitter: reproducibility is worth more
  than decorrelation inside a single-process service) up to a bounded
  number of attempts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..obs.clock import monotonic_s

__all__ = ["AdmissionPolicy", "RetryPolicy", "submit_with_retry"]


@dataclass(frozen=True)
class AdmissionPolicy:
    """Static admission limits for a :class:`~repro.serve.QBHService`.

    Parameters
    ----------
    max_queue_depth:
        Requests allowed to wait in the scheduler queue; arrivals
        beyond this are shed.  ``None`` = unbounded (load tests only —
        an unbounded queue is how services die).
    max_inflight:
        Requests allowed to be executing at once (across dispatched
        batches); arrivals finding the service this busy *and* a
        non-empty queue are shed.  ``None`` = unbounded.
    default_deadline_s:
        Deadline applied to requests that do not bring their own.
        ``None`` = no implicit deadline.
    retry_after_s:
        The backoff hint attached to shed outcomes.
    """

    max_queue_depth: int | None = 64
    max_inflight: int | None = None
    default_deadline_s: float | None = None
    retry_after_s: float = 0.01

    def __post_init__(self) -> None:
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise ValueError(
                f"max_queue_depth must be >= 1, got {self.max_queue_depth}"
            )
        if self.max_inflight is not None and self.max_inflight < 1:
            raise ValueError(
                f"max_inflight must be >= 1, got {self.max_inflight}"
            )
        if (self.default_deadline_s is not None
                and self.default_deadline_s <= 0):
            raise ValueError(
                f"default_deadline_s must be > 0, "
                f"got {self.default_deadline_s}"
            )
        if self.retry_after_s < 0:
            raise ValueError(
                f"retry_after_s must be >= 0, got {self.retry_after_s}"
            )

    def admits(self, queue_depth: int, inflight: int) -> bool:
        """Whether a new request may enter at the observed load."""
        if (self.max_queue_depth is not None
                and queue_depth >= self.max_queue_depth):
            return False
        if (self.max_inflight is not None and inflight >= self.max_inflight
                and queue_depth > 0):
            return False
        return True

    def resolve_deadline(self, deadline_s: float | None) -> float | None:
        """The request's *absolute* deadline on the monotonic clock.

        *deadline_s* is relative (seconds from now); ``None`` falls
        back to :attr:`default_deadline_s`, and ``None`` again means
        no deadline at all.
        """
        if deadline_s is None:
            deadline_s = self.default_deadline_s
        if deadline_s is None:
            return None
        if deadline_s <= 0:
            raise ValueError(f"deadline_s must be > 0, got {deadline_s}")
        return monotonic_s() + deadline_s


@dataclass(frozen=True)
class RetryPolicy:
    """Deterministic exponential backoff for shed requests.

    Attempt *i* (0-based) sleeps ``base_s * multiplier**i`` seconds,
    capped at *max_s*; after *max_attempts* resubmissions the shed
    outcome is returned as-is.  When the shed outcome carries a larger
    ``retry_after_s`` hint, the hint wins — the service knows its own
    drain rate better than a client-side constant.
    """

    base_s: float = 0.01
    multiplier: float = 2.0
    max_s: float = 0.5
    max_attempts: int = 3

    def __post_init__(self) -> None:
        if self.base_s <= 0:
            raise ValueError(f"base_s must be > 0, got {self.base_s}")
        if self.multiplier < 1.0:
            raise ValueError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if self.max_s < self.base_s:
            raise ValueError("max_s must be >= base_s")
        if self.max_attempts < 0:
            raise ValueError(
                f"max_attempts must be >= 0, got {self.max_attempts}"
            )

    def backoff_s(self, attempt: int) -> float:
        """The sleep before resubmission number ``attempt + 1``."""
        return min(self.base_s * self.multiplier ** attempt, self.max_s)


def submit_with_retry(submit, retry: RetryPolicy | None = None, *,
                      sleep=time.sleep):
    """Run *submit* (returning a ``ServeOutcome``), retrying sheds.

    *submit* is a zero-argument callable performing one synchronous
    submission.  Only ``shed`` outcomes are retried — a deadline miss
    or an error would only repeat — and the returned outcome's
    ``attempts`` attribute counts the submissions made (1 = no retry).
    """
    if retry is None:
        retry = RetryPolicy()
    attempt = 0
    while True:
        outcome = submit()
        attempt += 1
        if outcome.status != "shed" or attempt > retry.max_attempts:
            outcome.attempts = attempt
            return outcome
        pause = retry.backoff_s(attempt - 1)
        if outcome.retry_after_s is not None:
            pause = max(pause, outcome.retry_after_s)
        sleep(pause)
