"""Closed-loop load generator for the serving layer.

The benchmark harness behind ``repro bench-serve`` and
``benchmarks/bench_serve.py``: *clients* threads each submit their
share of a fixed workload back-to-back (closed loop — a client only
submits its next request once the previous one resolved), against
either the micro-batching service or direct per-query engine dispatch,
and the run is summarised as sustained throughput, latency
percentiles, outcome counts, and per-request result digests.

The workload models what makes QBH serving interesting: a **Zipf**
distribution over a pool of hum variants, so a few popular tunes
dominate — exactly the skew that request coalescing and result caching
exist for.  Digests (:func:`result_digest`) hash the exact result
bytes, so two runs can assert *byte-identical* answers across serving
modes — the acceptance bar for "the serving layer never changes what
the engine computes".
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass, field

import numpy as np

from ..obs.clock import monotonic_s

__all__ = [
    "RequestSpec",
    "RequestRecord",
    "LoadReport",
    "zipf_workload",
    "scenario_workload",
    "result_digest",
    "run_load",
    "direct_dispatch",
    "service_dispatch",
    "parity_mismatches",
]


@dataclass(frozen=True)
class RequestSpec:
    """One planned request: which query, which kind, which parameter.

    The optional *scenario* / *severity* / *target* fields tag a
    request built from a degraded hum with a known ground-truth melody
    (see :mod:`repro.hum.degrade`): quality-aware load runs use them
    to attribute each served answer back to its error-model cell.
    They are part of the (frozen, hashable) identity, so parity
    checking across serving modes still works per spec.
    """

    kind: str
    param: object
    query_index: int
    scenario: str | None = None
    severity: float | None = None
    target: int | None = None


@dataclass
class RequestRecord:
    """One executed request: what came back, and how fast."""

    spec: RequestSpec
    status: str
    latency_s: float
    digest: str | None
    from_cache: bool = False
    batch_size: int = 0


def result_digest(results) -> str:
    """A 16-hex digest of the exact result bytes.

    Ids contribute their ``repr`` and distances their float64 bytes,
    so two result sets collide only when they are byte-identical —
    the equality the serving parity checks assert.
    """
    digest = hashlib.sha1()
    for item, dist in results:
        digest.update(repr(item).encode())
        digest.update(np.float64(dist).tobytes())
    return digest.hexdigest()[:16]


def zipf_workload(total: int, pool_size: int, *, s: float = 1.3,
                  seed: int = 0, kinds=("knn",), knn_k: int = 5,
                  epsilon: float = 1.0) -> list[RequestSpec]:
    """*total* request specs over a *pool_size* query pool, Zipf-skewed.

    Rank ``r`` (1-based) is drawn with probability proportional to
    ``r**-s`` — ``s≈1.1–1.4`` matches measured popular-tune skew; 0 is
    uniform.  *kinds* cycles deterministically over the requested
    query kinds, pairing ``"knn"`` with *knn_k* and ``"range"`` with
    *epsilon*.
    """
    if total < 1:
        raise ValueError(f"total must be >= 1, got {total}")
    if pool_size < 1:
        raise ValueError(f"pool_size must be >= 1, got {pool_size}")
    ranks = np.arange(1, pool_size + 1, dtype=np.float64)
    weights = ranks ** -float(s)
    weights /= weights.sum()
    rng = np.random.default_rng(seed)
    indices = rng.choice(pool_size, size=total, p=weights)
    specs = []
    for position, query_index in enumerate(indices):
        kind = kinds[position % len(kinds)]
        param = int(knn_k) if kind == "knn" else float(epsilon)
        specs.append(RequestSpec(kind=kind, param=param,
                                 query_index=int(query_index)))
    return specs


def scenario_workload(cells, *, kind: str = "knn", knn_k: int = 10,
                      epsilon: float = 1.0,
                      repeat: int = 1) -> list[RequestSpec]:
    """Specs over a degraded-query pool, tagged with their cell.

    *cells* is a sequence of ``(query_index, scenario, severity,
    target)`` tuples — one per entry of the query pool the caller
    built with :func:`repro.hum.degrade.degrade` (``target`` is the
    ground-truth melody index the hum was rendered from).  Each pool
    entry yields *repeat* identical specs, so caching and coalescing
    see realistic repeats while every answer stays attributable to
    its (scenario, severity) cell.
    """
    if repeat < 1:
        raise ValueError(f"repeat must be >= 1, got {repeat}")
    param = int(knn_k) if kind == "knn" else float(epsilon)
    specs = []
    for query_index, scenario, severity, target in cells:
        spec = RequestSpec(
            kind=kind, param=param, query_index=int(query_index),
            scenario=str(scenario), severity=float(severity),
            target=int(target),
        )
        specs.extend([spec] * repeat)
    return specs


@dataclass
class LoadReport:
    """What one closed-loop run produced."""

    mode: str
    clients: int
    wall_s: float
    records: list[RequestRecord] = field(default_factory=list)
    saturation: dict | None = None

    @property
    def completed(self) -> int:
        """Requests that resolved (any status)."""
        return len(self.records)

    @property
    def ok(self) -> int:
        """Requests that produced results."""
        return sum(1 for r in self.records if r.status == "ok")

    @property
    def by_status(self) -> dict:
        """Outcome counts keyed by status."""
        counts: dict[str, int] = {}
        for record in self.records:
            counts[record.status] = counts.get(record.status, 0) + 1
        return counts

    @property
    def qps(self) -> float:
        """Sustained completed-request throughput."""
        return self.completed / self.wall_s if self.wall_s > 0 else 0.0

    def latency_percentiles(self) -> dict:
        """p50/p95/p99/max request latency in seconds."""
        if not self.records:
            return {"p50": None, "p95": None, "p99": None, "max": None}
        lat = np.sort([r.latency_s for r in self.records])
        return {
            "p50": float(np.percentile(lat, 50)),
            "p95": float(np.percentile(lat, 95)),
            "p99": float(np.percentile(lat, 99)),
            "max": float(lat[-1]),
        }

    def to_dict(self) -> dict:
        """The run summary as a JSON-ready dict (no per-request rows)."""
        return {
            "mode": self.mode,
            "clients": self.clients,
            "wall_s": self.wall_s,
            "completed": self.completed,
            "qps": self.qps,
            "by_status": self.by_status,
            "latency_s": self.latency_percentiles(),
            "saturation": self.saturation,
        }


def direct_dispatch(engine):
    """Baseline submit function: one engine call per request, no
    batching, no cache — what serving replaces."""

    def submit(spec: RequestSpec, query) -> tuple[str, object, dict]:
        if spec.kind == "range":
            results, _ = engine.range_search(query, spec.param)
        else:
            results, _ = engine.knn(query, spec.param)
        return "ok", results, {}

    return submit


def service_dispatch(service, *, deadline_s: float | None = None):
    """Submit function routing through a
    :class:`~repro.serve.QBHService` (sync, per-service retry)."""

    def submit(spec: RequestSpec, query) -> tuple[str, object, dict]:
        if spec.kind == "range":
            outcome = service.range_search(query, spec.param,
                                           deadline_s=deadline_s)
        else:
            outcome = service.knn(query, spec.param,
                                  deadline_s=deadline_s)
        extra = {"from_cache": outcome.from_cache,
                 "batch_size": outcome.batch_size}
        return outcome.status, outcome.results, extra

    return submit


def run_load(submit, specs, queries, *, clients: int = 8,
             mode: str = "service") -> LoadReport:
    """Drive *specs* through *submit* from *clients* closed-loop threads.

    *submit* is ``(spec, query) -> (status, results, extra)`` (see
    :func:`direct_dispatch` / :func:`service_dispatch`); *queries* is
    the query pool indexed by ``spec.query_index``.  Specs are dealt
    round-robin to clients, each running its share sequentially.
    Records keep the original spec order index-free — parity between
    two runs compares per-spec digests via :func:`parity_mismatches`.
    """
    if clients < 1:
        raise ValueError(f"clients must be >= 1, got {clients}")
    specs = list(specs)
    records: list[RequestRecord | None] = [None] * len(specs)
    barrier = threading.Barrier(clients + 1)

    def client(worker: int) -> None:
        barrier.wait()
        for position in range(worker, len(specs), clients):
            spec = specs[position]
            query = queries[spec.query_index]
            started = monotonic_s()
            status, results, extra = submit(spec, query)
            latency = monotonic_s() - started
            records[position] = RequestRecord(
                spec=spec, status=status, latency_s=latency,
                digest=(result_digest(results)
                        if status == "ok" and results is not None else None),
                from_cache=bool(extra.get("from_cache", False)),
                batch_size=int(extra.get("batch_size", 0)),
            )

    threads = [threading.Thread(target=client, args=(i,),
                                name=f"loadgen-{i}")
               for i in range(clients)]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = monotonic_s()
    for thread in threads:
        thread.join()
    wall = monotonic_s() - started
    done = [record for record in records if record is not None]
    return LoadReport(mode=mode, clients=clients, wall_s=wall, records=done)


def parity_mismatches(a: LoadReport, b: LoadReport) -> int:
    """How many requests got *different* results across two runs.

    Identical requests — same kind, parameter, and query — must
    produce byte-identical results no matter which serving mode
    answered them, so digests are keyed by the (hashable) spec itself;
    a spec whose digest disagrees with any earlier sighting, within a
    run or across the two, counts as a mismatch.  Requests without
    results (shed, deadline-exceeded) are skipped: they are outcome
    differences, not correctness differences.
    """
    seen: dict[RequestSpec, str] = {}
    mismatches = 0
    for report in (a, b):
        for record in report.records:
            if record.status != "ok" or record.digest is None:
                continue
            known = seen.setdefault(record.spec, record.digest)
            if known != record.digest:
                mismatches += 1
    return mismatches
