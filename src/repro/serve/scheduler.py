"""Micro-batching scheduler: a bounded queue that coalesces requests.

Concurrent callers submit single queries; the engine is at its best
serving *batches* (shared corpus matrices, one cache-warm pass per
group, deduplicated repeats answered once).  The scheduler bridges the
two with the classic dynamic micro-batching loop:

1. a dispatcher blocks on the bounded FIFO queue;
2. when a request arrives it becomes the **head**: the dispatcher
   lingers up to ``linger_s`` collecting *compatible* requests — same
   kind (range/knn) and same search parameter — closing the batch
   early when ``max_batch`` of them are waiting;
3. requests whose deadline already passed are resolved as
   ``deadline_exceeded`` without doing any work;
4. the surviving batch is deduplicated by query fingerprint and handed
   to the executor (one engine evaluation per *distinct* query —
   request coalescing, the big win under the QBH workload's repeated
   hums);
5. every request's future is resolved — duplicates share the computed
   answer — and a request whose deadline lapsed *during* execution
   still gets ``deadline_exceeded``, never a late result.

Fairness: batches always form around the **oldest waiting request**,
so an unpopular singleton is at worst one batch away from dispatch —
a hot query group can never starve it.

The scheduler knows nothing about engines or caches: execution is a
callable ``execute_batch(kind, param, requests) -> {fingerprint:
ServeOutcome}`` supplied by :class:`~repro.serve.service.QBHService`,
which keeps this module testable with stub executors.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from dataclasses import dataclass, field

from ..obs import OBS_DISABLED
from ..obs.clock import monotonic_s

__all__ = ["ServeOutcome", "ServeRequest", "ServeFuture",
           "MicroBatchScheduler"]

#: Outcome statuses a request can resolve to.
OUTCOME_STATUSES = ("ok", "shed", "deadline_exceeded", "error", "shutdown")


@dataclass
class ServeOutcome:
    """How one serving request ended.

    ``status`` is one of :data:`OUTCOME_STATUSES`; ``results`` is the
    exact ``(id, distance)`` sequence for ``ok`` and ``None``
    otherwise — a missed deadline or an error never carries a partial
    answer.  ``results`` may be shared between coalesced requests and
    cache hits: treat it as read-only.
    """

    status: str
    results: tuple | None = None
    queue_wait_s: float = 0.0
    service_time_s: float = 0.0
    from_cache: bool = False
    batch_size: int = 0
    retry_after_s: float | None = None
    error: str | None = None
    attempts: int = 1

    @property
    def ok(self) -> bool:
        """True when the request produced results."""
        return self.status == "ok"

    def to_dict(self) -> dict:
        """The outcome as a JSON-ready dict (results as pair lists)."""
        return {
            "status": self.status,
            "results": (None if self.results is None
                        else [[item, float(dist)]
                              for item, dist in self.results]),
            "queue_wait_s": self.queue_wait_s,
            "service_time_s": self.service_time_s,
            "from_cache": self.from_cache,
            "batch_size": self.batch_size,
            "retry_after_s": self.retry_after_s,
            "error": self.error,
            "attempts": self.attempts,
        }


class ServeFuture:
    """A one-shot, thread-safe handle to a request's eventual outcome."""

    __slots__ = ("_event", "_outcome")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._outcome: ServeOutcome | None = None

    def resolve(self, outcome: ServeOutcome) -> None:
        """Deliver the outcome (first resolution wins, rest ignored)."""
        if not self._event.is_set():
            self._outcome = outcome
            self._event.set()

    def done(self) -> bool:
        """Whether an outcome has been delivered."""
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> ServeOutcome:
        """Block until the outcome arrives (``TimeoutError`` past
        *timeout* seconds)."""
        if not self._event.wait(timeout):
            raise TimeoutError("request outcome not available in time")
        assert self._outcome is not None
        return self._outcome


@dataclass
class ServeRequest:
    """One queued query: what to run, for whom, and until when.

    ``deadline_s`` is *absolute* on the monotonic clock (``None`` = no
    deadline).  ``group_deadline_s`` is filled by the scheduler before
    execution with the latest deadline among the request's coalesced
    duplicates — the executor's cooperative-cancellation cutoff: work
    stops only once *no* requester can still use the answer.
    """

    kind: str
    query: object
    param: object
    fingerprint: str
    deadline_s: float | None = None
    submitted_s: float = field(default_factory=monotonic_s)
    future: ServeFuture = field(default_factory=ServeFuture)
    group_deadline_s: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("range", "knn"):
            raise ValueError(
                f"kind must be 'range' or 'knn', got {self.kind!r}"
            )

    @property
    def group_key(self) -> tuple:
        """Batching compatibility: same kind and search parameter."""
        return (self.kind, self.param)

    def expired(self, now: float) -> bool:
        """Whether the request's own deadline has passed."""
        return self.deadline_s is not None and now > self.deadline_s


class MicroBatchScheduler:
    """Bounded FIFO queue + dispatcher threads forming micro-batches.

    Parameters
    ----------
    execute_batch:
        ``(kind, param, requests) -> {fingerprint: ServeOutcome}`` run
        on a dispatcher thread with the deduplicated batch.  Outcomes
        are templates: the scheduler stamps per-request queue wait,
        batch size, and the post-execution deadline check on top.
    max_batch:
        Most requests dispatched per batch (before deduplication).
    linger_s:
        How long the dispatcher waits past the head request's arrival
        for compatible requests to accumulate.  The core
        latency/throughput dial: 0 disables batching delay entirely.
    dispatchers:
        Dispatcher thread count.  One (the default) strictly preserves
        batch FIFO order; more overlap execution of *different* batches.
    max_queue_depth:
        Bound on waiting requests; :meth:`submit` refuses past it.
    on_complete:
        Optional ``(request, outcome) -> None`` callback run for every
        resolved request (the service's metrics hook).
    obs:
        Observability facade for ``serve:batch`` spans and metrics.
    """

    def __init__(self, execute_batch, *, max_batch: int = 8,
                 linger_s: float = 0.002, dispatchers: int = 1,
                 max_queue_depth: int | None = None,
                 on_complete=None, obs=None) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if linger_s < 0:
            raise ValueError(f"linger_s must be >= 0, got {linger_s}")
        if dispatchers < 1:
            raise ValueError(f"dispatchers must be >= 1, got {dispatchers}")
        self._execute_batch = execute_batch
        self.max_batch = max_batch
        self.linger_s = linger_s
        self.max_queue_depth = max_queue_depth
        self._on_complete = on_complete
        self.obs = OBS_DISABLED if obs is None else obs
        self._queue: deque[ServeRequest] = deque()
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._closed = False
        self._drain = True
        self._inflight = 0
        self._threads = [
            threading.Thread(target=self._dispatch_loop,
                             name=f"serve-dispatch-{i}", daemon=True)
            for i in range(dispatchers)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    # producer side
    # ------------------------------------------------------------------

    @property
    def depth(self) -> int:
        """Requests currently waiting in the queue."""
        with self._lock:
            return len(self._queue)

    @property
    def inflight(self) -> int:
        """Requests currently inside a dispatched batch."""
        with self._lock:
            return self._inflight

    def submit(self, request: ServeRequest) -> bool:
        """Enqueue *request*; ``False`` when the queue is full/closed.

        A ``False`` return means the scheduler did nothing — the
        caller owns the shed outcome (and its retry hint).
        """
        with self._cond:
            if self._closed:
                return False
            if (self.max_queue_depth is not None
                    and len(self._queue) >= self.max_queue_depth):
                return False
            self._queue.append(request)
            self._cond.notify()
            return True

    def close(self, *, drain: bool = True) -> None:
        """Stop dispatching: drain the queue or shed it, then join.

        With *drain* (default) queued requests are still executed;
        otherwise they resolve immediately with status ``shutdown``.
        Idempotent; safe to call from any thread.
        """
        with self._cond:
            if self._closed:
                self._cond.notify_all()
            else:
                self._closed = True
                self._drain = drain
                self._cond.notify_all()
        for thread in self._threads:
            if thread is not threading.current_thread():
                thread.join()

    # ------------------------------------------------------------------
    # dispatcher side
    # ------------------------------------------------------------------

    def _collect_batch(self) -> list[ServeRequest] | None:
        """Block for a head request, linger, and cut one batch.

        Returns ``None`` exactly once the scheduler is closed and the
        queue is empty (dispatcher exit signal).  Holding the lock is
        confined to queue surgery; execution — and every completion
        callback — happens outside it.
        """
        while True:
            shed: list[ServeRequest] = []
            batch: list[ServeRequest] = []
            with self._cond:
                while not self._queue and not self._closed:
                    self._cond.wait()
                if not self._queue:
                    return None
                if self._closed and not self._drain:
                    shed = list(self._queue)
                    self._queue.clear()
                else:
                    head = self._queue[0]
                    key = head.group_key
                    cutoff = head.submitted_s + self.linger_s
                    while not self._closed:
                        matching = sum(
                            1 for r in self._queue if r.group_key == key
                        )
                        if matching >= self.max_batch:
                            break
                        remaining = cutoff - monotonic_s()
                        if remaining <= 0:
                            break
                        self._cond.wait(remaining)
                        if not self._queue or self._queue[0] is not head:
                            break  # another dispatcher took the head
                    kept: list[ServeRequest] = []
                    while self._queue and len(batch) < self.max_batch:
                        request = self._queue.popleft()
                        if request.group_key == key:
                            batch.append(request)
                        else:
                            kept.append(request)
                    self._queue.extendleft(reversed(kept))
                    if batch:
                        self._inflight += len(batch)
            for request in shed:
                self._resolve(request, ServeOutcome(status="shutdown"))
            if batch:
                return batch

    def _dispatch_loop(self) -> None:
        while True:
            batch = self._collect_batch()
            if batch is None:
                return
            try:
                self._run_batch(batch)
            finally:
                with self._lock:
                    self._inflight -= len(batch)

    def _resolve(self, request: ServeRequest, outcome: ServeOutcome) -> None:
        request.future.resolve(outcome)
        if self._on_complete is not None:
            self._on_complete(request, outcome)

    def _run_batch(self, batch: list[ServeRequest]) -> None:
        kind, param = batch[0].group_key
        now = monotonic_s()
        live: list[ServeRequest] = []
        for request in batch:
            if request.expired(now):
                self._resolve(request, ServeOutcome(
                    status="deadline_exceeded",
                    queue_wait_s=now - request.submitted_s,
                ))
            else:
                live.append(request)
        if not live:
            return

        # Coalesce: one execution per distinct fingerprint; the
        # representative carries the group's *latest* deadline so the
        # executor only aborts once every duplicate has expired.
        groups: OrderedDict[str, list[ServeRequest]] = OrderedDict()
        for request in live:
            groups.setdefault(request.fingerprint, []).append(request)
        representatives = []
        for members in groups.values():
            rep = members[0]
            deadlines = [m.deadline_s for m in members]
            rep.group_deadline_s = (
                None if any(d is None for d in deadlines)
                else max(deadlines)
            )
            representatives.append(rep)

        started = monotonic_s()
        try:
            outcomes = self._execute_batch(kind, param, representatives)
        except Exception as exc:  # executor bug: fail the batch loudly
            outcomes = {
                rep.fingerprint: ServeOutcome(
                    status="error",
                    error=f"{type(exc).__name__}: {exc}",
                )
                for rep in representatives
            }
        elapsed = monotonic_s() - started

        done = monotonic_s()
        for fingerprint, members in groups.items():
            template = outcomes.get(fingerprint) or ServeOutcome(
                status="error", error="executor returned no outcome"
            )
            for request in members:
                if template.ok and request.expired(done):
                    # The answer exists but arrived too late for this
                    # requester: a deadline violation must never be
                    # returned as a result.
                    outcome = ServeOutcome(
                        status="deadline_exceeded",
                        queue_wait_s=started - request.submitted_s,
                        service_time_s=elapsed,
                        batch_size=len(live),
                    )
                else:
                    outcome = ServeOutcome(
                        status=template.status,
                        results=template.results,
                        queue_wait_s=started - request.submitted_s,
                        service_time_s=elapsed,
                        from_cache=template.from_cache,
                        batch_size=len(live),
                        error=template.error,
                    )
                self._resolve(request, outcome)

        self.obs.record_serve_batch(
            kind, len(live), len(groups), self.max_batch, elapsed,
            self.depth,
        )
