"""The serving layer: concurrent query serving above the engine.

The ROADMAP's north star is a QBH service under heavy traffic; this
package is the serving discipline that takes the exact
filter-and-refine machinery (:mod:`repro.engine`,
:mod:`repro.index`) from "a library you call" to "a service that
survives load":

* :mod:`~repro.serve.scheduler` — bounded request queue + dynamic
  micro-batching with request coalescing and oldest-first fairness;
* :mod:`~repro.serve.admission` — queue/in-flight caps, per-request
  deadlines (cooperatively cancelled inside the engine), deterministic
  retry/backoff for shed requests;
* :mod:`~repro.serve.cache` — LRU + TTL result cache with versioned
  invalidation on index mutation;
* :mod:`~repro.serve.service` — :class:`QBHService`, the facade wiring
  it all together with sync/async submission and graceful shutdown;
* :mod:`~repro.serve.loadgen` — the closed-loop load generator behind
  ``repro bench-serve`` and ``benchmarks/bench_serve.py``.

Everything here changes *when* and *how often* the engine runs — never
what it computes: answers are exact, deadline misses return
``deadline_exceeded`` rather than partial results, and cache hits are
byte-identical to recomputation.  See ``docs/ARCHITECTURE.md``
("Serving layer") for the queue → batch → cascade picture.
"""

from .admission import AdmissionPolicy, RetryPolicy, submit_with_retry
from .cache import CacheStats, ResultCache, request_fingerprint
from .scheduler import (
    MicroBatchScheduler,
    ServeFuture,
    ServeOutcome,
    ServeRequest,
)
from .service import QBHService

__all__ = [
    "QBHService",
    "MicroBatchScheduler",
    "ServeRequest",
    "ServeOutcome",
    "ServeFuture",
    "AdmissionPolicy",
    "RetryPolicy",
    "submit_with_retry",
    "ResultCache",
    "CacheStats",
    "request_fingerprint",
]
