"""Result cache: LRU + TTL, keyed by query fingerprint and version.

Repeated hums of popular tunes are the QBH workload's defining skew —
the same few melodies arrive over and over — and recomputing the full
filter-and-refine cascade for each repeat is pure waste.  This cache
closes that loop while keeping the engine's exactness contract intact:

* **Keying** — :func:`request_fingerprint` hashes the *raw* query
  series (canonical float64 bytes) together with the request kind and
  parameter, so a hit is only possible for a byte-identical query with
  identical search parameters.  Hashing the raw series (before the
  normal form) trades a few misses — two different raw series that
  normalise identically miss each other — for a guarantee that no
  floating-point quirk of re-normalisation can alias two different
  requests onto one entry.
* **Versioned invalidation** — every entry stores the index *version*
  captured **before** the result was computed, and
  :meth:`ResultCache.get` refuses entries whose version differs from
  the caller's current one.  An ``insert``/``remove`` racing with an
  in-flight query can therefore only waste a cache slot, never serve
  a stale answer: the stale entry's version no longer matches and the
  next probe recomputes.  The version is any equatable value, not
  necessarily an int: a plain engine pins ``0``, an index supplies
  :attr:`~repro.index.gemini.WarpingIndex.mutations`, and the sharded
  tier supplies the composite ``(mutations, router epoch)`` so a
  shard rebuild *or* a worker respawn
  (:attr:`repro.shard.ShardRouter.epoch`) also invalidates — the
  property test in ``tests/shard/`` interleaves mutations, forced
  respawns, and queries to pin that down.
* **Bounding** — least-recently-used eviction above *max_entries* and
  an optional TTL so an idle service eventually drops cold results.

The cache stores exactly what the engine returned — ``(id, distance)``
pairs — so a hit is byte-identical to a recompute against the same
index version; the serving tests replay hits against the engine's
no-false-negative oracles to pin that down.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..obs.clock import monotonic_s

__all__ = ["request_fingerprint", "CacheStats", "ResultCache"]


def request_fingerprint(query, kind: str, param) -> str:
    """A stable 16-hex-digit key for one (query, kind, param) request.

    The query is canonicalised to a contiguous float64 array so every
    representation of the same values (lists, float32 arrays, views)
    maps to the same bytes; *kind* and *param* ride along so a range
    and a k-NN request over the same series never collide.
    """
    q = np.ascontiguousarray(query, dtype=np.float64)
    digest = hashlib.sha1()
    digest.update(q.tobytes())
    digest.update(f"|{kind}|{param!r}".encode())
    return digest.hexdigest()[:16]


@dataclass
class CacheStats:
    """Probe accounting: how the cache is actually behaving."""

    hits: int = 0
    misses: int = 0
    stale: int = 0
    expired: int = 0
    evictions: int = 0
    puts: int = 0

    @property
    def probes(self) -> int:
        """Total :meth:`ResultCache.get` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of probes answered from the cache."""
        return self.hits / self.probes if self.probes else 0.0

    def to_dict(self) -> dict:
        """The accounting as a JSON-ready dict."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stale": self.stale,
            "expired": self.expired,
            "evictions": self.evictions,
            "puts": self.puts,
            "hit_rate": self.hit_rate,
        }


@dataclass
class _Entry:
    results: tuple
    version: object  # any equatable value, e.g. int or (int, int)
    stored_s: float


class ResultCache:
    """Thread-safe LRU + TTL cache of exact query results.

    Parameters
    ----------
    max_entries:
        LRU capacity; the least recently *probed* entry is evicted
        first.  ``0`` disables storage entirely (every probe misses).
    ttl_s:
        Optional time-to-live: entries older than this are treated as
        misses and dropped at probe time.  ``None`` = no expiry.
    clock:
        Monotonic time source (tests inject a fake one).

    Every entry carries the index version it was computed under;
    :meth:`get` only returns entries whose stored version equals the
    *version* argument, which is how any index mutation invalidates
    the whole cache at zero cost (see the module docstring).
    """

    def __init__(self, max_entries: int = 1024,
                 ttl_s: float | None = None, *, clock=monotonic_s) -> None:
        if max_entries < 0:
            raise ValueError(f"max_entries must be >= 0, got {max_entries}")
        if ttl_s is not None and ttl_s <= 0:
            raise ValueError(f"ttl_s must be > 0, got {ttl_s}")
        self.max_entries = max_entries
        self.ttl_s = ttl_s
        self._clock = clock
        self._entries: OrderedDict[str, _Entry] = OrderedDict()
        self._lock = threading.Lock()
        self.stats = CacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: str, version) -> tuple | None:
        """The cached results for *key* at *version*, or ``None``.

        A present entry misses when its stored version differs from
        *version* (the index mutated since it was computed) or its TTL
        lapsed; both kinds are dropped on the spot so the slot frees up.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            if entry.version != version:
                del self._entries[key]
                self.stats.stale += 1
                self.stats.misses += 1
                return None
            if (self.ttl_s is not None
                    and self._clock() - entry.stored_s > self.ttl_s):
                del self._entries[key]
                self.stats.expired += 1
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return entry.results

    def put(self, key: str, version, results) -> None:
        """Store *results* computed under index *version*.

        Results are frozen to a tuple — cached answers are shared
        between every future hit, so they must be treated as read-only.
        """
        if self.max_entries == 0:
            return
        entry = _Entry(results=tuple(results), version=version,
                       stored_s=self._clock())
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            self.stats.puts += 1
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def clear(self) -> None:
        """Drop every entry (probe statistics are kept)."""
        with self._lock:
            self._entries.clear()
