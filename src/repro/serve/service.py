""":class:`QBHService` — the concurrent query-serving facade.

Sits above :class:`~repro.engine.QueryEngine` /
:class:`~repro.index.gemini.WarpingIndex` /
:class:`~repro.qbh.QueryByHummingSystem` and below the CLI, wiring the
serving pieces together:

* submissions pass **admission control**
  (:class:`~repro.serve.admission.AdmissionPolicy`) — full queues shed
  with a retry hint instead of waiting forever;
* a **result cache** (:class:`~repro.serve.cache.ResultCache`) answers
  byte-identical repeats instantly, with versioned invalidation keyed
  to the index mutation counter;
* admitted requests flow through the **micro-batching scheduler**
  (:class:`~repro.serve.scheduler.MicroBatchScheduler`), which
  coalesces concurrent duplicates and batches compatible queries;
* execution runs on the engine with **cooperative deadlines**: the
  engine's ``should_abort`` checkpoints turn a lapsed deadline into a
  ``deadline_exceeded`` outcome, never a partial answer;
* everything is accounted: ``serve:request``/``serve:batch`` spans and
  ``serve.*`` metrics through :mod:`repro.obs`, plus a
  :meth:`QBHService.saturation` snapshot for load tests.

Answers are exact and identical to direct engine calls — the serving
layer only changes *when* and *how often* the engine runs, never what
it computes.  Synchronous (:meth:`range_search` / :meth:`knn`) and
asynchronous (:meth:`submit` returning a
:class:`~repro.serve.scheduler.ServeFuture`) submission share one path.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from ..engine.errors import QueryAborted
from ..obs import OBS_DISABLED
from ..obs.clock import monotonic_s
from .admission import AdmissionPolicy, RetryPolicy, submit_with_retry
from .cache import ResultCache, request_fingerprint
from .scheduler import (
    MicroBatchScheduler,
    ServeFuture,
    ServeOutcome,
    ServeRequest,
)

__all__ = ["QBHService"]


class QBHService:
    """Concurrent serving over one query engine.

    Parameters
    ----------
    engine_fn:
        Zero-argument callable returning the engine to execute on.
        Called per batch, so an index that rebuilds its engine after a
        mutation is always served with the fresh one.
    version_fn:
        Zero-argument callable returning the index version (a
        monotonic mutation counter).  Cache entries are keyed by it;
        ``None`` pins version 0 (an immutable corpus).
    normalize:
        Optional per-query transform applied at *execution* time (the
        index's normal form).  Fingerprints are taken over the raw
        query bytes, before this runs.
    max_batch / linger_ms / dispatchers:
        Micro-batching dials (see
        :class:`~repro.serve.scheduler.MicroBatchScheduler`).
    admission:
        An :class:`~repro.serve.admission.AdmissionPolicy`; ``None``
        uses the defaults (queue bound 64, no implicit deadline).
    retry:
        A :class:`~repro.serve.admission.RetryPolicy` applied by the
        *synchronous* methods when a submission is shed; ``None``
        disables client-side retry (the shed outcome is returned).
    cache_size / cache_ttl_s:
        Result-cache dials; ``cache_size=0`` disables caching.
    workers:
        Thread-pool size for executing distinct queries of one batch
        concurrently.  ``None`` or 1 executes serially — the right
        default on a single-core host, where threads cannot overlap
        NumPy work.  Ignored when the engine is a shard router, whose
        fan-outs serialize on an internal lock: the shard processes
        are the parallelism, so sharded batches run serially
        parent-side.
    health_interval_s:
        With a service-owned shard fleet (``shards=`` on the
        classmethod constructors), start a
        :class:`~repro.shard.ShardHealthMonitor` heartbeat pinging the
        workers every this-many seconds, keeping the
        ``shard.health.*`` gauges and :meth:`saturation`'s ``shards``
        section fresh even when no queries flow.  ``None`` (default)
        disables the heartbeat; the snapshot then reflects
        serving-path side effects only.
    shadow_fraction:
        Shadow-scoring sample rate in ``[0, 1]``: this fraction of
        completed ``ok`` requests (cache hits included — a stale cache
        is exactly what shadowing exists to catch) is re-answered by a
        direct, unbatched, deadline-free engine call and compared
        result-for-result, feeding the ``quality.shadow.*`` counters
        and the online ``quality.shadow.agreement`` gauge.  The
        re-check runs on the completing thread, so keep it small in
        production (0.01 ≈ one request in a hundred); 0.0 (default)
        disables shadowing.
    obs:
        Observability facade (default disabled).

    Prefer the classmethod constructors:
    :meth:`from_engine`, :meth:`from_index`, :meth:`from_system`.
    """

    def __init__(self, engine_fn, *, version_fn=None, normalize=None,
                 max_batch: int = 8,
                 linger_ms: float = 2.0, dispatchers: int = 1,
                 admission: AdmissionPolicy | None = None,
                 retry: RetryPolicy | None = None,
                 cache_size: int = 1024, cache_ttl_s: float | None = None,
                 workers: int | None = None,
                 health_interval_s: float | None = None,
                 shadow_fraction: float = 0.0, obs=None) -> None:
        self._engine_fn = engine_fn
        self._version_fn = version_fn if version_fn is not None else lambda: 0
        self._normalize = normalize
        self.obs = OBS_DISABLED if obs is None else obs
        self.admission = admission if admission is not None else (
            AdmissionPolicy()
        )
        self.retry = retry
        self.cache = (ResultCache(cache_size, cache_ttl_s)
                      if cache_size > 0 else None)
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self._pool = (ThreadPoolExecutor(max_workers=workers,
                                         thread_name_prefix="serve-exec")
                      if workers is not None and workers > 1 else None)
        self._counters_lock = threading.Lock()
        self._counters = {
            "submitted": 0, "completed": 0, "ok": 0, "shed": 0,
            "deadline_exceeded": 0, "error": 0, "shutdown": 0,
            "cache_hits": 0, "executed": 0,
        }
        self._closed = False
        if not 0.0 <= shadow_fraction <= 1.0:
            raise ValueError(
                f"shadow_fraction must be in [0, 1], got {shadow_fraction}")
        if shadow_fraction > 0.0:
            from ..obs.quality import ShadowScorer

            self.shadow = ShadowScorer(
                self._shadow_exact, fraction=shadow_fraction, obs=self.obs,
            )
        else:
            self.shadow = None
        # A shard router/manager built *for* this service by a
        # classmethod constructor; closed with it (poison-pill drain).
        self._owned_shards = None
        # An ingest coordinator attached via attach_ingest; closed with
        # the service (drains staged melodies into one last rebuild).
        self._ingest = None
        self.health_interval_s = health_interval_s
        self._health_monitor = None
        self.scheduler = MicroBatchScheduler(
            self._execute_batch,
            max_batch=max_batch,
            linger_s=linger_ms / 1e3,
            dispatchers=dispatchers,
            max_queue_depth=self.admission.max_queue_depth,
            on_complete=self._on_complete,
            obs=self.obs,
        )

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_engine(cls, engine, *, shards: int | None = None,
                    mp_context=None, **kwargs) -> "QBHService":
        """Serve one fixed :class:`~repro.engine.QueryEngine`.

        The engine's corpus is immutable from the service's point of
        view, so the cache version is pinned — except for the shard
        epoch when *shards* > 1 puts a
        :class:`~repro.shard.ShardRouter` (owned by the service, closed
        with it) in front: worker respawns bump the epoch, which keys
        the cache so no cached answer can outlive the worker set that
        computed it.
        """
        if shards is not None and shards > 1:
            from ..shard import ShardRouter

            router = ShardRouter.from_engine(
                engine, shards=shards, mp_context=mp_context,
                obs=kwargs.get("obs"),
            )
            service = cls(lambda: router,
                          version_fn=lambda: (0, router.epoch), **kwargs)
            service._owned_shards = router
            service._start_health_monitor()
            return service
        return cls(lambda: engine, **kwargs)

    @classmethod
    def from_index(cls, index, *, shards: int | None = None,
                   mp_context=None, **kwargs) -> "QBHService":
        """Serve a :class:`~repro.index.gemini.WarpingIndex`.

        Queries run through the index's cascade engine; the cache is
        versioned by ``index.mutations``, so every ``insert`` /
        ``remove`` invalidates stale results automatically.  Requests
        carry the *raw* query (that is what gets fingerprinted); the
        index's normal form is applied at execution time, exactly as
        ``index.cascade_*_query`` would.

        With *shards* > 1 (default: the index's own ``shards`` knob,
        round-tripped by :mod:`repro.persistence`), batches run on a
        corpus partitioned across worker processes behind an
        :class:`~repro.shard.IndexShardManager`: mutations rebuild the
        shard set, and the cache version becomes the composite
        ``(mutations, epoch)`` so neither a mutation nor a worker
        respawn can serve a stale cached answer.
        """
        kwargs.setdefault("obs", index.obs)
        if shards is None:
            shards = getattr(index, "shards", None)
        if shards is not None and shards > 1:
            from ..shard import IndexShardManager

            manager = IndexShardManager(
                index, shards=shards, mp_context=mp_context,
                obs=kwargs.get("obs"),
            )
            # Build the fleet now, before the scheduler's threads start:
            # a defaulted start method can still fork here (cheap),
            # whereas the first batch would build it on a dispatcher
            # thread, where only spawn is safe.
            manager.router()
            service = cls(
                manager.router,
                version_fn=manager.version,
                normalize=index.normal_form.apply,
                **kwargs,
            )
            service._owned_shards = manager
            service._start_health_monitor()
            return service
        return cls(
            lambda: index.engine(),
            version_fn=lambda: index.mutations,
            normalize=index.normal_form.apply,
            **kwargs,
        )

    @classmethod
    def from_system(cls, system, **kwargs) -> "QBHService":
        """Serve a :class:`~repro.qbh.QueryByHummingSystem`'s index
        (``shards=`` and every other knob pass through to
        :meth:`from_index`)."""
        return cls.from_index(system.index, **kwargs)

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------

    def submit(self, kind: str, query, param, *,
               deadline_s: float | None = None) -> ServeFuture:
        """Submit one request; returns a future resolving to its outcome.

        *kind* is ``"range"`` (param = epsilon) or ``"knn"`` (param =
        k); *deadline_s* is relative seconds from now (``None`` uses
        the admission policy's default).  The future resolves to a
        :class:`~repro.serve.scheduler.ServeOutcome` — immediately for
        cache hits and shed requests, after dispatch otherwise.
        """
        if self._closed:
            raise RuntimeError("service is closed")
        query = np.ascontiguousarray(query, dtype=np.float64)
        fingerprint = request_fingerprint(query, kind, param)
        request = ServeRequest(
            kind=kind, query=query, param=param, fingerprint=fingerprint,
            deadline_s=self.admission.resolve_deadline(deadline_s),
        )
        with self._counters_lock:
            self._counters["submitted"] += 1

        if self.cache is not None:
            cached = self.cache.get(fingerprint, self._version_fn())
            if cached is not None:
                self.obs.record_serve_cache("hit")
                self._finish_inline(request, ServeOutcome(
                    status="ok", results=cached, from_cache=True,
                ))
                return request.future
            self.obs.record_serve_cache("miss")

        if not self.admission.admits(self.scheduler.depth,
                                     self.scheduler.inflight):
            self._finish_inline(request, ServeOutcome(
                status="shed",
                retry_after_s=self.admission.retry_after_s,
            ))
            return request.future
        if not self.scheduler.submit(request):
            self._finish_inline(request, ServeOutcome(
                status="shed",
                retry_after_s=self.admission.retry_after_s,
            ))
        return request.future

    def range_search(self, query, epsilon: float, *,
                     deadline_s: float | None = None,
                     timeout: float | None = None) -> ServeOutcome:
        """Synchronous ε-range request (retrying sheds per policy)."""
        return self._sync("range", query, float(epsilon),
                          deadline_s=deadline_s, timeout=timeout)

    def knn(self, query, k: int, *, deadline_s: float | None = None,
            timeout: float | None = None) -> ServeOutcome:
        """Synchronous k-NN request (retrying sheds per policy)."""
        return self._sync("knn", query, int(k),
                          deadline_s=deadline_s, timeout=timeout)

    def _sync(self, kind, query, param, *, deadline_s, timeout):
        def once():
            return self.submit(
                kind, query, param, deadline_s=deadline_s
            ).result(timeout)

        if self.retry is None:
            return once()
        return submit_with_retry(once, self.retry)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def drain(self) -> None:
        """Finish every queued request, then stop dispatching."""
        self._closed = True
        self.scheduler.close(drain=True)

    def close(self, *, drain: bool = True) -> None:
        """Shut the service down (``drain=False`` sheds the queue).

        A shard router/manager built by :meth:`from_engine` /
        :meth:`from_index` is closed here too — poison-pill + drain,
        after the scheduler stops feeding it.
        """
        self._closed = True
        if self._ingest is not None:
            # Stop ingest first: a rebuild racing shutdown would swap
            # a generation into an index nothing serves any more.  The
            # coordinator drains staged melodies into one last rebuild
            # before the serving machinery comes down.
            self._ingest.close(drain=drain)
            self._ingest = None
        if self._health_monitor is not None:
            # Stop the heartbeat before the fleet: a ping racing the
            # poison-pill drain would only see a closed router.
            self._health_monitor.close()
            self._health_monitor = None
        self.scheduler.close(drain=drain)
        if self._pool is not None:
            self._pool.shutdown(wait=True)
        if self._owned_shards is not None:
            self._owned_shards.close()

    @property
    def shard_manager(self):
        """The service-owned shard fleet, or ``None`` when unsharded.

        An ingest coordinator passes this as its ``shard_manager`` so
        each generation swap respawns the fleet exactly once.
        """
        return self._owned_shards

    def attach_ingest(self, coordinator) -> None:
        """Adopt an :class:`~repro.ingest.IngestCoordinator`.

        The coordinator's lifecycle becomes the service's: it is
        started here if it is not running yet, its snapshot appears
        under ``"ingest"`` in :meth:`saturation`, and :meth:`close`
        drains and stops it before the serving machinery comes down.
        """
        if self._ingest is not None:
            raise RuntimeError("an ingest coordinator is already attached")
        self._ingest = coordinator
        if not coordinator.running:
            coordinator.start()

    def __enter__(self) -> "QBHService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _start_health_monitor(self) -> None:
        """Start the shard-health heartbeat when configured and owned.

        Only a fleet the service *owns* is monitored — pinging a
        caller-managed router from a background thread would contend
        with whatever schedule the caller runs it on.
        """
        if self._owned_shards is None or self.health_interval_s is None:
            return
        from ..shard import ShardHealthMonitor

        self._health_monitor = ShardHealthMonitor(
            self._owned_shards, interval_s=self.health_interval_s
        ).start()

    def _finish_inline(self, request: ServeRequest,
                       outcome: ServeOutcome) -> None:
        """Resolve a request that never reached the scheduler."""
        request.future.resolve(outcome)
        self._on_complete(request, outcome)

    def _on_complete(self, request: ServeRequest,
                     outcome: ServeOutcome) -> None:
        with self._counters_lock:
            self._counters["completed"] += 1
            self._counters[outcome.status] = (
                self._counters.get(outcome.status, 0) + 1
            )
            if outcome.from_cache:
                self._counters["cache_hits"] += 1
        self.obs.record_serve_request(
            request.kind, outcome.status,
            outcome.queue_wait_s, outcome.service_time_s,
            from_cache=outcome.from_cache,
        )
        if (self.shadow is not None and outcome.status == "ok"
                and outcome.results is not None):
            try:
                self.shadow.maybe_check(
                    request.kind, request.query, request.param,
                    outcome.results,
                )
            except Exception:
                # The probe is best-effort: a shadow re-check must
                # never turn a served answer into a failure.
                pass

    def _shadow_exact(self, kind, query, param):
        """Ground truth for the shadow scorer: one direct engine call,
        unbatched, uncached, and without a deadline."""
        engine = self._engine_fn()
        q = query if self._normalize is None else self._normalize(query)
        if kind == "range":
            results, _ = engine.range_search(q, param)
        else:
            results, _ = engine.knn(q, param)
        return tuple((item, float(dist)) for item, dist in results)

    def _execute_batch(self, kind, param, requests):
        """Run one deduplicated batch on the engine (scheduler hook).

        The cache is re-probed here — a duplicate may have populated
        it while this request waited in the queue — and every computed
        answer is stored under the version captured *before* the
        engine ran, so a concurrent index mutation can only waste the
        entry, never let it serve a stale answer.
        """
        engine = self._engine_fn()
        version = self._version_fn()
        outcomes: dict[str, ServeOutcome] = {}
        pending = []
        for request in requests:
            cached = (self.cache.get(request.fingerprint, version)
                      if self.cache is not None else None)
            if cached is not None:
                self.obs.record_serve_cache("hit")
                outcomes[request.fingerprint] = ServeOutcome(
                    status="ok", results=cached, from_cache=True,
                )
            else:
                pending.append(request)

        # A shard router takes the deadline itself (a closure cannot
        # cross a process boundary; the router re-anchors it in every
        # worker and still polls it parent-side between replies).
        sharded = getattr(engine, "is_sharded", False)
        from ..shard.router import RouterClosed

        def run_one(request: ServeRequest):
            deadline = request.group_deadline_s
            query = (request.query if self._normalize is None
                     else self._normalize(request.query))
            engine_now, version_now = engine, version
            for retried in (False, True):
                sharded_now = getattr(engine_now, "is_sharded", False)
                should_abort = (
                    None if deadline is None or sharded_now
                    else (lambda: monotonic_s() > deadline)
                )
                kwargs = ({"deadline_s": deadline} if sharded_now
                          else {"should_abort": should_abort})
                try:
                    if kind == "range":
                        results, _ = engine_now.range_search(
                            query, param, **kwargs
                        )
                    else:
                        results, _ = engine_now.knn(query, param, **kwargs)
                except RouterClosed as exc:
                    # A generation swap prewarmed a fresh fleet and
                    # closed the router this batch had already fetched.
                    # Benign race: refetch and retry exactly once.
                    if retried:
                        return request.fingerprint, ServeOutcome(
                            status="error",
                            error=f"{type(exc).__name__}: {exc}",
                        )
                    engine_now = self._engine_fn()
                    version_now = self._version_fn()
                    continue
                except QueryAborted:
                    return request.fingerprint, ServeOutcome(
                        status="deadline_exceeded"
                    )
                except Exception as exc:
                    return request.fingerprint, ServeOutcome(
                        status="error", error=f"{type(exc).__name__}: {exc}",
                    )
                results = tuple(
                    (item, float(dist)) for item, dist in results
                )
                if self.cache is not None:
                    self.cache.put(request.fingerprint, version_now, results)
                return request.fingerprint, ServeOutcome(
                    status="ok", results=results
                )

        # A shard router serializes fan-outs on an internal lock (the
        # shard processes are the parallelism), so spreading a sharded
        # batch over the thread pool would only queue threads on that
        # lock — run it serially instead.
        if self._pool is not None and len(pending) > 1 and not sharded:
            computed = list(self._pool.map(run_one, pending))
        else:
            computed = [run_one(request) for request in pending]
        with self._counters_lock:
            self._counters["executed"] += len(pending)
        outcomes.update(computed)
        return outcomes

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def saturation(self) -> dict:
        """A point-in-time snapshot of the service's load counters.

        Includes current queue depth and in-flight count, cumulative
        outcome counts, shed/deadline-miss rates, batch occupancy, and
        the cache's own accounting — the numbers an operator watches
        to decide whether the service is keeping up.  A service-owned
        shard fleet contributes a ``"shards"`` list of per-worker
        health rows (see :class:`~repro.shard.health.ShardHealth`);
        RTT/RSS are as fresh as the last ping, so enable the
        ``health_interval_s`` heartbeat for live numbers.
        """
        with self._counters_lock:
            counters = dict(self._counters)
        completed = counters["completed"]
        snapshot = {
            "queue_depth": self.scheduler.depth,
            "inflight": self.scheduler.inflight,
            **counters,
            "shed_rate": counters["shed"] / completed if completed else 0.0,
            "deadline_miss_rate": (
                counters["deadline_exceeded"] / completed
                if completed else 0.0
            ),
            "cache_hit_rate": (
                counters["cache_hits"] / completed if completed else 0.0
            ),
        }
        if self.cache is not None:
            snapshot["cache"] = self.cache.stats.to_dict()
        if self.shadow is not None:
            snapshot["shadow"] = self.shadow.snapshot()
        if self._owned_shards is not None:
            snapshot["shards"] = [
                row.to_dict()
                for row in self._owned_shards.health_snapshot()
            ]
        if self._ingest is not None:
            snapshot["ingest"] = self._ingest.snapshot()
        return snapshot
