"""Dynamic Time Warping distances, kernels, and warping paths."""

from .distance import (
    dtw_distance,
    ldtw_distance,
    ldtw_distance_batch,
    ldtw_refiner,
    utw_distance,
    warping_distance,
)
from .kernels import (
    DEFAULT_BACKEND,
    DTWKernel,
    available_backends,
    get_kernel,
    register_kernel,
)
from .multivariate import (
    lb_keogh_multivariate,
    lb_paa_multivariate,
    mdtw_distance,
    multivariate_envelope,
)
from .path import cost_matrix, is_valid_path, path_cost, warping_path

__all__ = [
    "dtw_distance",
    "ldtw_distance",
    "ldtw_distance_batch",
    "ldtw_refiner",
    "utw_distance",
    "warping_distance",
    "DTWKernel",
    "DEFAULT_BACKEND",
    "available_backends",
    "get_kernel",
    "register_kernel",
    "lb_keogh_multivariate",
    "lb_paa_multivariate",
    "mdtw_distance",
    "multivariate_envelope",
    "cost_matrix",
    "is_valid_path",
    "path_cost",
    "warping_path",
]
