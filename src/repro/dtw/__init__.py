"""Dynamic Time Warping distances and warping paths."""

from .distance import (
    dtw_distance,
    ldtw_distance,
    ldtw_distance_batch,
    utw_distance,
    warping_distance,
)
from .multivariate import (
    lb_keogh_multivariate,
    lb_paa_multivariate,
    mdtw_distance,
    multivariate_envelope,
)
from .path import cost_matrix, is_valid_path, path_cost, warping_path

__all__ = [
    "dtw_distance",
    "ldtw_distance",
    "ldtw_distance_batch",
    "utw_distance",
    "warping_distance",
    "lb_keogh_multivariate",
    "lb_paa_multivariate",
    "mdtw_distance",
    "multivariate_envelope",
    "cost_matrix",
    "is_valid_path",
    "path_cost",
    "warping_path",
]
