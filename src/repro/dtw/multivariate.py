"""Multivariate DTW and envelope bounds (the paper's video hint).

The paper closes its contributions with: the envelope-transform idea
"might have applications to video processing in the spirit of [13]" —
i.e. to *multivariate* time series, where each sample is a
d-dimensional point (motion-capture joints, gesture trajectories,
video features).  This module supplies that generalisation:

* :func:`mdtw_distance` — DTW over sequences of points with Euclidean
  ground cost per aligned pair, banded like the scalar engine;
* :func:`multivariate_envelope` — per-dimension k-envelopes (the
  natural product envelope: a sequence is inside iff every coordinate
  track is inside its band);
* :func:`lb_keogh_multivariate` — the full-dimension envelope bound,
  summing per-dimension excursions (sound for the same reason as the
  scalar Lemma 2, applied coordinate-wise);
* :func:`lb_paa_multivariate` — the New_PAA-style reduced bound:
  per-dimension frame averages of the envelope, so a d-dimensional
  sequence of length n reduces to ``d * N`` features.

All bounds are checked against :func:`mdtw_distance` by property tests.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.envelope import Envelope, k_envelope
from ..core.transforms import PAATransform

__all__ = [
    "mdtw_distance",
    "multivariate_envelope",
    "lb_keogh_multivariate",
    "lb_paa_multivariate",
]


def _as_sequence(x) -> np.ndarray:
    arr = np.asarray(x, dtype=np.float64)
    if arr.ndim != 2 or arr.shape[0] < 1 or arr.shape[1] < 1:
        raise ValueError(
            f"multivariate series must have shape (length, dims), got {arr.shape}"
        )
    if not np.all(np.isfinite(arr)):
        raise ValueError("multivariate series must be finite")
    return arr


def mdtw_distance(
    x, y, k: int | None = None, *, upper_bound: float | None = None
) -> float:
    """DTW between two multivariate sequences.

    Parameters
    ----------
    x, y:
        Arrays of shape ``(length, dims)`` with equal ``dims``.
    k:
        Optional Sakoe-Chiba band half-width (None = unconstrained).
    upper_bound:
        Early-abandoning threshold (returns ``inf`` when exceeded).

    The aligned-pair cost is the squared Euclidean distance between
    points; the result is the square root of the optimal path cost,
    matching the scalar engine's convention.
    """
    xa = _as_sequence(x)
    ya = _as_sequence(y)
    if xa.shape[1] != ya.shape[1]:
        raise ValueError(
            f"dimensionality mismatch: {xa.shape[1]} != {ya.shape[1]}"
        )
    n, m = xa.shape[0], ya.shape[0]
    band = max(n, m) if k is None else k
    if band < 0:
        raise ValueError(f"band half-width must be >= 0, got {band}")
    if abs(n - m) > band:
        return math.inf
    ub = math.inf if upper_bound is None else float(upper_bound) ** 2

    inf = math.inf
    prev = [inf] * m
    for i in range(n):
        lo = max(0, i - band)
        hi = min(m - 1, i + band)
        curr = [inf] * m
        row_min = inf
        xi = xa[i]
        for j in range(lo, hi + 1):
            diff = xi - ya[j]
            cost = float(diff @ diff)
            if i == 0 and j == 0:
                best = 0.0
            else:
                best = inf
                if i > 0:
                    if prev[j] < best:
                        best = prev[j]
                    if j > 0 and prev[j - 1] < best:
                        best = prev[j - 1]
                if j > 0 and curr[j - 1] < best:
                    best = curr[j - 1]
                if best == inf:
                    continue
            total = best + cost
            curr[j] = total
            if total < row_min:
                row_min = total
        if row_min > ub:
            return inf
        prev = curr
    return math.sqrt(prev[m - 1])


def multivariate_envelope(sequence, k: int) -> list[Envelope]:
    """Per-dimension ``k``-envelopes of a ``(length, dims)`` sequence.

    Any sequence within band distance ``k`` alignment of the input has
    every coordinate track inside the corresponding envelope.
    """
    arr = _as_sequence(sequence)
    return [k_envelope(arr[:, d], k) for d in range(arr.shape[1])]


def lb_keogh_multivariate(query, envelopes: list[Envelope]) -> float:
    """Envelope lower bound of :func:`mdtw_distance` (full dimension).

    Sums squared per-coordinate excursions outside the per-dimension
    envelopes — the coordinate-wise Lemma 2, combined by linearity of
    the squared Euclidean ground cost.
    """
    arr = _as_sequence(query)
    if arr.shape[1] != len(envelopes):
        raise ValueError(
            f"query has {arr.shape[1]} dims but {len(envelopes)} envelopes"
        )
    total = 0.0
    for d, env in enumerate(envelopes):
        track = arr[:, d]
        if track.size != len(env):
            raise ValueError("sequence length does not match envelope length")
        above = np.maximum(track - env.upper, 0.0)
        below = np.maximum(env.lower - track, 0.0)
        total += float(np.sum(above * above + below * below))
    return math.sqrt(total)


def lb_paa_multivariate(
    query, envelopes: list[Envelope], n_frames: int
) -> float:
    """Reduced-dimension New_PAA bound for multivariate DTW.

    Each coordinate's envelope is frame-averaged (the paper's New_PAA,
    applied per dimension); the query's per-coordinate PAA features are
    compared against the reduced bands and the squared contributions
    summed.  A ``(n, d)`` sequence is pruned from ``d * n_frames``
    numbers.
    """
    arr = _as_sequence(query)
    if arr.shape[1] != len(envelopes):
        raise ValueError(
            f"query has {arr.shape[1]} dims but {len(envelopes)} envelopes"
        )
    n = arr.shape[0]
    paa = PAATransform(n, n_frames)
    total = 0.0
    for d, env in enumerate(envelopes):
        if len(env) != n:
            raise ValueError("sequence length does not match envelope length")
        feats = paa.transform(arr[:, d])
        upper = paa.transform(env.upper)
        lower = paa.transform(env.lower)
        above = np.maximum(feats - upper, 0.0)
        below = np.maximum(lower - feats, 0.0)
        total += float(np.sum(above * above + below * below))
    return math.sqrt(total)
