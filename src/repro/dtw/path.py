"""Warping paths: recovery, validation, and cost (Section 4).

A warping path aligns two series cell by cell through the DP grid.
:func:`warping_path` recovers an optimal path by backtracking through
the full cost matrix (use it for analysis and visualisation — the
distance functions in :mod:`repro.dtw.distance` avoid materialising the
matrix).  :func:`is_valid_path` checks the paper's monotonicity,
continuity, boundary, and band constraints.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.series import as_series

__all__ = ["cost_matrix", "warping_path", "is_valid_path", "path_cost"]


def cost_matrix(x, y, k: int | None = None) -> np.ndarray:
    """Accumulated squared-cost DTW matrix (``inf`` outside the band).

    Entry ``(i, j)`` is the minimal accumulated squared cost of any
    admissible path from ``(0, 0)`` to ``(i, j)``.
    """
    xa = as_series(x)
    ya = as_series(y)
    n, m = xa.size, ya.size
    band = max(n, m) if k is None else k
    if band < 0:
        raise ValueError(f"band half-width must be >= 0, got {band}")
    acc = np.full((n, m), math.inf)
    for i in range(n):
        lo = max(0, i - band)
        hi = min(m - 1, i + band)
        for j in range(lo, hi + 1):
            cost = (xa[i] - ya[j]) ** 2
            if i == 0 and j == 0:
                acc[i, j] = cost
                continue
            best = math.inf
            if i > 0:
                best = min(best, acc[i - 1, j])
                if j > 0:
                    best = min(best, acc[i - 1, j - 1])
            if j > 0:
                best = min(best, acc[i, j - 1])
            if best != math.inf:
                acc[i, j] = best + cost
    return acc


def warping_path(x, y, k: int | None = None) -> list[tuple[int, int]]:
    """An optimal warping path from ``(0, 0)`` to ``(n-1, m-1)``.

    Returns the list of aligned index pairs.  Raises ``ValueError``
    when the band admits no path (lengths differ by more than ``k``).
    """
    acc = cost_matrix(x, y, k)
    n, m = acc.shape
    if not math.isfinite(acc[n - 1, m - 1]):
        raise ValueError("no admissible warping path within the band")
    path = [(n - 1, m - 1)]
    i, j = n - 1, m - 1
    while (i, j) != (0, 0):
        candidates = []
        if i > 0 and j > 0:
            candidates.append((acc[i - 1, j - 1], (i - 1, j - 1)))
        if i > 0:
            candidates.append((acc[i - 1, j], (i - 1, j)))
        if j > 0:
            candidates.append((acc[i, j - 1], (i, j - 1)))
        _, (i, j) = min(candidates, key=lambda item: item[0])
        path.append((i, j))
    path.reverse()
    return path


def is_valid_path(
    path: list[tuple[int, int]], n: int, m: int, k: int | None = None
) -> bool:
    """Check a path against the paper's constraints.

    Boundary (starts at ``(0, 0)``, ends at ``(n-1, m-1)``),
    monotonicity and continuity (steps advance each axis by 0 or 1,
    and at least one axis by 1), and — if ``k`` is given — the band
    constraint ``|i - j| <= k`` at every cell.
    """
    if not path:
        return False
    if path[0] != (0, 0) or path[-1] != (n - 1, m - 1):
        return False
    for (i0, j0), (i1, j1) in zip(path, path[1:]):
        di, dj = i1 - i0, j1 - j0
        if di < 0 or dj < 0:          # monotonic
            return False
        if di > 1 or dj > 1:          # continuous
            return False
        if di == 0 and dj == 0:       # must advance
            return False
    if k is not None and any(abs(i - j) > k for i, j in path):
        return False
    return all(0 <= i < n and 0 <= j < m for i, j in path)


def path_cost(x, y, path: list[tuple[int, int]]) -> float:
    """Euclidean cost of a specific alignment (sqrt of summed squares)."""
    xa = as_series(x)
    ya = as_series(y)
    total = sum((xa[i] - ya[j]) ** 2 for i, j in path)
    return math.sqrt(total)
