"""Dynamic Time Warping distances (Section 4 of the paper).

All distances here use the Euclidean ground metric: costs accumulate as
squared differences and the square root is taken at the end, matching
the paper's ``D^2`` recurrences.

* :func:`dtw_distance` — classic unconstrained DTW (Definition 1),
  O(nm) dynamic programming.
* :func:`ldtw_distance` — ``k``-Local DTW (Definition 4): the warping
  path is confined to a Sakoe-Chiba band of half-width ``k``, giving
  O(kn) time.
* :func:`utw_distance` — Uniform Time Warping (Definition 2): a purely
  diagonal path between the upsampled series (Lemma 1).
* :func:`warping_distance` — the paper's composite Definition 5: LDTW
  between the UTW normal forms, parameterised by the warping width
  ``delta = (2k+1)/n``.
"""

from __future__ import annotations

import math

import numpy as np

from ..core.envelope import warping_width_to_k
from ..core.series import as_series, uniform_resample

__all__ = [
    "dtw_distance",
    "ldtw_distance",
    "ldtw_distance_batch",
    "utw_distance",
    "warping_distance",
]


_METRICS = ("euclidean", "manhattan")


def _banded_dtw_cost(
    x: np.ndarray,
    y: np.ndarray,
    k: int,
    upper_bound_cost: float = math.inf,
    *,
    manhattan: bool = False,
) -> float:
    """Accumulated DTW cost with band half-width ``k``; inf if pruned.

    The per-cell cost is the squared difference (Euclidean metric) or
    the absolute difference (Manhattan).  Row-by-row DP over the band.
    When *upper_bound_cost* is finite the computation abandons early
    once every reachable cell in a row exceeds it (useful during index
    refinement, where any distance above the query threshold is
    equivalent to infinity).
    """
    n = x.size
    m = y.size
    if abs(n - m) > k:
        return math.inf

    inf = math.inf
    prev = [inf] * m
    x_list = x.tolist()
    y_list = y.tolist()
    for i in range(n):
        lo = max(0, i - k)
        hi = min(m - 1, i + k)
        curr = [inf] * m
        row_min = inf
        xi = x_list[i]
        for j in range(lo, hi + 1):
            d = xi - y_list[j]
            cost = (d if d >= 0 else -d) if manhattan else d * d
            if i == 0 and j == 0:
                best = 0.0
            else:
                best = inf
                if i > 0:
                    if prev[j] < best:
                        best = prev[j]
                    if j > 0 and prev[j - 1] < best:
                        best = prev[j - 1]
                if j > 0 and curr[j - 1] < best:
                    best = curr[j - 1]
                if best == inf:
                    continue
            total = best + cost
            curr[j] = total
            if total < row_min:
                row_min = total
        if row_min > upper_bound_cost:
            return inf
        prev = curr
    return prev[m - 1]


def _check_metric(metric: str) -> bool:
    if metric not in _METRICS:
        raise ValueError(f"metric must be one of {_METRICS}, got {metric!r}")
    return metric == "manhattan"


def _finish(cost: float, manhattan: bool) -> float:
    if cost == math.inf:
        return math.inf
    return cost if manhattan else math.sqrt(cost)


def _bound_cost(upper_bound: float | None, manhattan: bool) -> float:
    if upper_bound is None:
        return math.inf
    return float(upper_bound) if manhattan else float(upper_bound) ** 2


def dtw_distance(
    x, y, *, upper_bound: float | None = None, metric: str = "euclidean"
) -> float:
    """Unconstrained DTW distance between two series (Definition 1).

    Parameters
    ----------
    x, y:
        Time series of any (possibly different) lengths.
    upper_bound:
        Optional early-abandoning threshold: if the true distance
        exceeds it, ``inf`` is returned instead (sound for filtering).
    metric:
        ``"euclidean"`` (the paper's, default) or ``"manhattan"`` —
        the "other distance metrics" the paper says the framework
        admits with modifications.
    """
    manhattan = _check_metric(metric)
    xa = as_series(x)
    ya = as_series(y)
    k = max(xa.size, ya.size)  # a band this wide imposes no constraint
    cost = _banded_dtw_cost(
        xa, ya, k, _bound_cost(upper_bound, manhattan), manhattan=manhattan
    )
    return _finish(cost, manhattan)


def ldtw_distance(
    x, y, k: int, *, upper_bound: float | None = None,
    metric: str = "euclidean",
) -> float:
    """``k``-Local DTW distance (Definition 4).

    Alignments may only pair elements whose positions differ by at most
    ``k``.  Returns ``inf`` when the lengths differ by more than ``k``
    (no admissible path exists) or when *upper_bound* is exceeded.
    """
    if k < 0:
        raise ValueError(f"band half-width must be >= 0, got {k}")
    manhattan = _check_metric(metric)
    xa = as_series(x)
    ya = as_series(y)
    cost = _banded_dtw_cost(
        xa, ya, k, _bound_cost(upper_bound, manhattan), manhattan=manhattan
    )
    return _finish(cost, manhattan)


def ldtw_distance_batch(
    query, candidates, k: int, *, metric: str = "euclidean"
) -> np.ndarray:
    """``k``-Local DTW distances from one query to many candidates.

    All candidates must share the query's length (the situation after
    UTW normalisation).  The dynamic program is identical to
    :func:`ldtw_distance` but runs vectorised *across candidates*: the
    Python loop is O(n * band) while every cell update is a NumPy
    operation over all ``m`` candidates at once — one to two orders of
    magnitude faster than ``m`` scalar calls for databases of
    thousands of series.

    Parameters
    ----------
    query:
        Series of length ``n``.
    candidates:
        Array of shape ``(m, n)``.
    k:
        Band half-width.
    metric:
        ``"euclidean"`` or ``"manhattan"``.

    Returns
    -------
    numpy.ndarray
        The ``m`` distances, in candidate order.
    """
    if k < 0:
        raise ValueError(f"band half-width must be >= 0, got {k}")
    manhattan = _check_metric(metric)
    q = as_series(query)
    cand = np.asarray(candidates, dtype=np.float64)
    if cand.ndim != 2 or cand.shape[1] != q.size:
        raise ValueError(
            f"candidates must have shape (m, {q.size}), got {cand.shape}"
        )
    m, n = cand.shape
    if m == 0:
        return np.zeros(0)

    inf = math.inf
    # prev[j] / curr[j] are length-m vectors: best cost reaching cell
    # (i-1, j) / (i, j).  The two buffers are reused across rows; the
    # single position beyond each row's band that the next row can
    # read is reset to inf explicitly.
    prev = np.full((n, m), inf)
    curr = np.full((n, m), inf)
    for i in range(n):
        lo = max(0, i - k)
        hi = min(n - 1, i + k)
        qi = q[i]
        if lo > 0:
            # The buffer holds row i-2 here; this position is read as
            # curr[j-1] at j = lo before being written.
            curr[lo - 1] = inf
        for j in range(lo, hi + 1):
            diff = qi - cand[:, j]
            cost = np.abs(diff) if manhattan else diff * diff
            if i == 0 and j == 0:
                curr[j] = cost
                continue
            best = prev[j].copy() if i > 0 else np.full(m, inf)
            if i > 0 and j > 0:
                np.minimum(best, prev[j - 1], out=best)
            if j > 0:
                np.minimum(best, curr[j - 1], out=best)
            curr[j] = best + cost
        # The next row reads this buffer (as prev) up to hi + 1.
        if hi + 1 < n:
            curr[hi + 1] = inf
        prev, curr = curr, prev
    final = prev[n - 1]
    if manhattan:
        return final
    return np.sqrt(final)


def utw_distance(x, y) -> float:
    """Uniform Time Warping distance (Definition 2, via Lemma 1).

    ``D_UTW(x, y) = D(U_m(x), U_n(y)) / sqrt(n m)``: both series are
    stretched to a common length and compared point by point, with the
    normalisation making the result independent of the stretching.  As
    the paper notes, any common multiple works — we stretch to
    ``lcm(n, m)`` instead of ``n*m`` and normalise by that length,
    which yields exactly the same value.
    """
    xa = as_series(x)
    ya = as_series(y)
    common = math.lcm(xa.size, ya.size)
    xs = uniform_resample(xa, common)
    ys = uniform_resample(ya, common)
    diff = xs - ys
    return float(np.sqrt(np.sum(diff * diff) / common))


def warping_distance(
    x,
    y,
    *,
    delta: float,
    normal_length: int = 256,
    upper_bound: float | None = None,
    metric: str = "euclidean",
) -> float:
    """The paper's composite DTW distance (Definition 5).

    Both series are brought to the UTW normal form of *normal_length*
    samples, then compared with LDTW whose band half-width is derived
    from the warping width ``delta = (2k+1)/normal_length``.
    """
    xa = uniform_resample(as_series(x), normal_length)
    ya = uniform_resample(as_series(y), normal_length)
    k = warping_width_to_k(delta, normal_length)
    return ldtw_distance(xa, ya, k, upper_bound=upper_bound, metric=metric)
