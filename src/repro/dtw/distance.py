"""Dynamic Time Warping distances (Section 4 of the paper).

All distances here use the Euclidean ground metric: costs accumulate as
squared differences and the square root is taken at the end, matching
the paper's ``D^2`` recurrences.

* :func:`dtw_distance` — classic unconstrained DTW (Definition 1),
  O(nm) dynamic programming.
* :func:`ldtw_distance` — ``k``-Local DTW (Definition 4): the warping
  path is confined to a Sakoe-Chiba band of half-width ``k``, giving
  O(kn) time.
* :func:`utw_distance` — Uniform Time Warping (Definition 2): a purely
  diagonal path between the upsampled series (Lemma 1).
* :func:`warping_distance` — the paper's composite Definition 5: LDTW
  between the UTW normal forms, parameterised by the warping width
  ``delta = (2k+1)/n``.

The banded dynamic program itself lives in :mod:`repro.dtw.kernels`
behind a backend registry (``"scalar"`` reference loop /
``"vectorized"`` wavefront, the default); every function here takes a
``backend=`` name.  Input validation and float64 conversion happen
once in these wrappers — use :func:`ldtw_refiner` when refining many
candidates against one query so the per-query preparation is also paid
once.
"""

from __future__ import annotations

import math
from collections.abc import Callable

import numpy as np

from ..core.envelope import warping_width_to_k
from ..core.series import as_series, uniform_resample
from .kernels import KernelStats, get_kernel

__all__ = [
    "dtw_distance",
    "ldtw_distance",
    "ldtw_distance_batch",
    "ldtw_refiner",
    "utw_distance",
    "warping_distance",
]


_METRICS = ("euclidean", "manhattan")


def _check_metric(metric: str) -> bool:
    if metric not in _METRICS:
        raise ValueError(f"metric must be one of {_METRICS}, got {metric!r}")
    return metric == "manhattan"


def _finish(cost: float, manhattan: bool) -> float:
    if cost == math.inf:
        return math.inf
    return cost if manhattan else math.sqrt(cost)


def _bound_cost(upper_bound: float | None, manhattan: bool) -> float:
    if upper_bound is None:
        return math.inf
    return float(upper_bound) if manhattan else float(upper_bound) ** 2


def dtw_distance(
    x, y, *, upper_bound: float | None = None, metric: str = "euclidean",
    backend: str | None = None,
) -> float:
    """Unconstrained DTW distance between two series (Definition 1).

    Parameters
    ----------
    x, y:
        Time series of any (possibly different) lengths.
    upper_bound:
        Optional early-abandoning threshold: if the true distance
        exceeds it, ``inf`` is returned instead (sound for filtering).
    metric:
        ``"euclidean"`` (the paper's, default) or ``"manhattan"`` —
        the "other distance metrics" the paper says the framework
        admits with modifications.
    backend:
        DTW kernel backend name (default: the registry default,
        ``"vectorized"``).
    """
    manhattan = _check_metric(metric)
    xa = as_series(x)
    ya = as_series(y)
    k = max(xa.size, ya.size)  # a band this wide imposes no constraint
    cost = get_kernel(backend).cost(
        xa, ya, k, _bound_cost(upper_bound, manhattan), manhattan=manhattan
    )
    return _finish(cost, manhattan)


def ldtw_distance(
    x, y, k: int, *, upper_bound: float | None = None,
    metric: str = "euclidean", backend: str | None = None,
) -> float:
    """``k``-Local DTW distance (Definition 4).

    Alignments may only pair elements whose positions differ by at most
    ``k``.  Returns ``inf`` when the lengths differ by more than ``k``
    (no admissible path exists) or when *upper_bound* is exceeded.
    """
    if k < 0:
        raise ValueError(f"band half-width must be >= 0, got {k}")
    manhattan = _check_metric(metric)
    xa = as_series(x)
    ya = as_series(y)
    cost = get_kernel(backend).cost(
        xa, ya, k, _bound_cost(upper_bound, manhattan), manhattan=manhattan
    )
    return _finish(cost, manhattan)


def ldtw_refiner(
    query, k: int, *, metric: str = "euclidean", backend: str | None = None,
    kernel_stats: KernelStats | None = None,
) -> Callable[..., float]:
    """A prepared ``refine(y, upper_bound=None) -> distance`` closure.

    Refinement loops call the exact banded DTW once per surviving
    candidate with the *same* query; this hoists the query-side
    validation and conversion (including the scalar backend's list
    conversion) out of that loop, so each call pays only for the
    candidate side.  The returned callable accepts an optional
    early-abandoning *upper_bound* in distance space and returns the
    distance (``inf`` if pruned).  A *kernel_stats* recorder, when
    given, accumulates the work counters of every refine call (see
    :class:`repro.dtw.kernels.KernelStats`).
    """
    if k < 0:
        raise ValueError(f"band half-width must be >= 0, got {k}")
    manhattan = _check_metric(metric)
    qa = as_series(query)
    kernel = get_kernel(backend)
    if kernel_stats is None:
        prepared = kernel.prepare(qa, k, manhattan=manhattan)
    else:
        try:
            prepared = kernel.prepare(qa, k, manhattan=manhattan,
                                      stats=kernel_stats)
        except TypeError:
            # Third-party kernel predating the stats capability.
            prepared = kernel.prepare(qa, k, manhattan=manhattan)

    def refine(y, upper_bound: float | None = None) -> float:
        ya = y if isinstance(y, np.ndarray) and y.dtype == np.float64 \
            else as_series(y)
        cost = prepared(ya, _bound_cost(upper_bound, manhattan))
        return _finish(cost, manhattan)

    return refine


def ldtw_distance_batch(
    query, candidates, k: int, *, metric: str = "euclidean",
    upper_bound=None, backend: str | None = None,
    kernel_stats: KernelStats | None = None,
) -> np.ndarray:
    """``k``-Local DTW distances from one query to many candidates.

    All candidates must share the query's length (the situation after
    UTW normalisation).  The computation is delegated to the selected
    kernel backend's batch path; the default ``"vectorized"`` backend
    sweeps every candidate's banded DP simultaneously as anti-diagonal
    wavefronts — one to two orders of magnitude faster than per-pair
    scalar calls for databases of thousands of series.

    Parameters
    ----------
    query:
        Series of length ``n``.
    candidates:
        Array of shape ``(m, n)``.
    k:
        Band half-width.
    metric:
        ``"euclidean"`` or ``"manhattan"``.
    upper_bound:
        Optional early-abandoning cutoff in distance space — a scalar
        shared by all candidates or one value per candidate.  Rows
        whose distance provably exceeds their cutoff come back as
        ``inf`` (sound for filtering, as in :func:`ldtw_distance`).
    backend:
        DTW kernel backend name (default ``"vectorized"``).
    kernel_stats:
        Optional :class:`repro.dtw.kernels.KernelStats` recorder; the
        built-in kernels accumulate cells computed, rows processed,
        and columns compacted into it.

    Returns
    -------
    numpy.ndarray
        The ``m`` distances, in candidate order.
    """
    if k < 0:
        raise ValueError(f"band half-width must be >= 0, got {k}")
    manhattan = _check_metric(metric)
    q = as_series(query)
    cand = np.ascontiguousarray(candidates, dtype=np.float64)
    if cand.ndim != 2 or cand.shape[1] != q.size:
        raise ValueError(
            f"candidates must have shape (m, {q.size}), got {cand.shape}"
        )
    if cand.shape[0] == 0:
        return np.zeros(0)
    if upper_bound is None:
        bound_costs = None
    else:
        bounds = np.asarray(upper_bound, dtype=np.float64)
        bound_costs = bounds if manhattan else bounds * bounds
    kernel = get_kernel(backend)
    if kernel_stats is None:
        final = kernel.cost_batch(q, cand, k, bound_costs,
                                  manhattan=manhattan)
    else:
        final = kernel.cost_batch(q, cand, k, bound_costs,
                                  manhattan=manhattan, stats=kernel_stats)
    if manhattan:
        return final
    return np.sqrt(final)


def utw_distance(x, y) -> float:
    """Uniform Time Warping distance (Definition 2, via Lemma 1).

    ``D_UTW(x, y) = D(U_m(x), U_n(y)) / sqrt(n m)``: both series are
    stretched to a common length and compared point by point, with the
    normalisation making the result independent of the stretching.  As
    the paper notes, any common multiple works — we stretch to
    ``lcm(n, m)`` instead of ``n*m`` and normalise by that length,
    which yields exactly the same value.
    """
    xa = as_series(x)
    ya = as_series(y)
    common = math.lcm(xa.size, ya.size)
    xs = uniform_resample(xa, common)
    ys = uniform_resample(ya, common)
    diff = xs - ys
    return float(np.sqrt(np.sum(diff * diff) / common))


def warping_distance(
    x,
    y,
    *,
    delta: float,
    normal_length: int = 256,
    upper_bound: float | None = None,
    metric: str = "euclidean",
    backend: str | None = None,
) -> float:
    """The paper's composite DTW distance (Definition 5).

    Both series are brought to the UTW normal form of *normal_length*
    samples, then compared with LDTW whose band half-width is derived
    from the warping width ``delta = (2k+1)/normal_length``.
    """
    xa = uniform_resample(as_series(x), normal_length)
    ya = uniform_resample(as_series(y), normal_length)
    k = warping_width_to_k(delta, normal_length)
    return ldtw_distance(xa, ya, k, upper_bound=upper_bound, metric=metric,
                         backend=backend)
