"""Banded-DTW computation kernels and the backend registry.

The exact Sakoe-Chiba banded DTW of Definition 4 is the repo's hottest
inner loop: every candidate that survives the lower-bound cascade pays
one banded dynamic program.  This module holds the *implementations*
of that dynamic program — the single place they live — behind a small
registry so callers (:mod:`repro.dtw.distance`, the
:class:`~repro.engine.QueryEngine` refine loop, the index refinement
paths) can select one by name:

``"scalar"``
    The reference per-cell Python loop, row by row over the band.
    Simple, obviously correct, and the parity baseline for everything
    else.

``"vectorized"`` (default)
    An anti-diagonal *wavefront* sweep: all cells on one anti-diagonal
    ``i + j = d`` are independent given diagonals ``d-1`` and ``d-2``,
    so each diagonal is one batch of NumPy operations instead of a
    Python loop over cells.  The batched variant
    (:meth:`DTWKernel.cost_batch`) stacks ``B`` candidates into a
    ``(B, n)`` matrix and sweeps all of them simultaneously — the
    wavefront then spans ``band x B`` cells and amortises the NumPy
    dispatch overhead that dominates the single-pair case.  Early
    abandoning happens at diagonal granularity with a per-candidate
    mask: a candidate is dead once the running minimum over two
    consecutive wavefronts exceeds its cutoff (every warping path
    advances ``i + j`` by 1 or 2, so it must touch one of any two
    consecutive anti-diagonals).

All kernels work in **accumulated-cost space**: squared differences
for the Euclidean metric (the square root is the caller's job, as in
the paper's ``D^2`` recurrences) and absolute differences for
Manhattan.  ``inf`` means "no admissible path" or "abandoned against
the cutoff".  Inputs are assumed to be validated, C-contiguous
``float64`` arrays — :mod:`repro.dtw.distance` hoists that conversion
so repeated refinement against one query pays it once.
"""

from __future__ import annotations

import math
from collections.abc import Callable

import numpy as np

__all__ = [
    "DTWKernel",
    "KernelStats",
    "ScalarDTWKernel",
    "VectorizedDTWKernel",
    "DEFAULT_BACKEND",
    "available_backends",
    "get_kernel",
    "register_kernel",
    "banded_dtw_cost",
    "banded_dtw_cost_batch",
]

_INF = math.inf

#: Target bytes per DP buffer in the batched wavefront; candidates are
#: processed in column blocks of roughly this footprint so the three
#: rolling diagonals stay cache-resident regardless of batch size.
_BATCH_BLOCK_BYTES = 2_000_000

#: Compaction policy for per-candidate early abandoning: dead columns
#: are physically dropped once they are numerous enough for the copy
#: to pay for itself.
_COMPACT_MIN_DEAD = 32
_COMPACT_DEAD_FRACTION = 0.5


class KernelStats:
    """Opt-in work counters a kernel call fills in.

    Pass one to ``cost`` / ``prepare`` / ``cost_batch`` (or through
    :func:`repro.dtw.distance.ldtw_distance_batch` /
    :func:`~repro.dtw.distance.ldtw_refiner`) and the built-in kernels
    accumulate into it; the observability layer folds the totals into
    the ``dtw.*`` metrics and kernel spans.  The object is plain
    mutable state with no locking — share one only within a thread
    (the engine keeps one per query).

    Attributes
    ----------
    calls:
        Kernel dispatches (one per ``cost`` call or batch block row
        set).
    rows:
        Candidate rows processed across those calls.
    cells:
        Band DP cells evaluated (dead columns stop counting once
        abandoned or compacted away) — the implementation-bias-free
        work measure for comparing backends and cutoffs.
    compacted_columns:
        Candidate columns physically dropped from batched wavefront
        blocks by dead-column compaction.
    """

    __slots__ = ("calls", "rows", "cells", "compacted_columns")

    def __init__(self) -> None:
        self.calls = 0
        self.rows = 0
        self.cells = 0
        self.compacted_columns = 0

    def merge(self, other: "KernelStats") -> None:
        """Fold another recorder's counts into this one."""
        self.calls += other.calls
        self.rows += other.rows
        self.cells += other.cells
        self.compacted_columns += other.compacted_columns

    def as_dict(self) -> dict:
        """The counters as a JSON-ready dict."""
        return {
            "calls": self.calls,
            "rows": self.rows,
            "cells": self.cells,
            "compacted_columns": self.compacted_columns,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"KernelStats(calls={self.calls}, rows={self.rows}, "
                f"cells={self.cells}, "
                f"compacted_columns={self.compacted_columns})")


class DTWKernel:
    """One banded-DTW implementation; subclasses fill in the maths.

    The three entry points, all in accumulated-cost space:

    * :meth:`cost` — one ``(x, y)`` pair;
    * :meth:`prepare` — a per-query closure for repeated refinement of
      many candidates against the *same* ``x`` (conversion/precompute
      happens once);
    * :meth:`cost_batch` — many candidates at once, with optional
      per-candidate abandon cutoffs.
    """

    name = "abstract"

    def cost(
        self,
        x: np.ndarray,
        y: np.ndarray,
        k: int,
        bound_cost: float = _INF,
        *,
        manhattan: bool = False,
        stats: KernelStats | None = None,
    ) -> float:
        """Accumulated banded-DTW cost of one pair; ``inf`` if pruned.

        *stats*, when given, receives work counters; third-party
        kernels may ignore it (the built-in ones fill it in).
        """
        return self.prepare(x, k, manhattan=manhattan)(y, bound_cost)

    def prepare(
        self, x: np.ndarray, k: int, *, manhattan: bool = False,
        stats: KernelStats | None = None,
    ) -> Callable[[np.ndarray, float], float]:
        """A ``refine(y, bound_cost) -> cost`` closure bound to *x*."""
        raise NotImplementedError

    def cost_batch(
        self,
        x: np.ndarray,
        candidates: np.ndarray,
        k: int,
        bound_costs: np.ndarray | float | None = None,
        *,
        manhattan: bool = False,
        stats: KernelStats | None = None,
    ) -> np.ndarray:
        """Costs from *x* to every row of *candidates* (``inf`` = pruned).

        *bound_costs* may be a scalar cutoff shared by every candidate
        or one cutoff per row; ``None`` disables abandoning.  The
        default implementation loops a prepared refiner over the rows;
        vectorized backends override it.  *stats* receives work
        counters when the concrete kernel supports them.
        """
        m = candidates.shape[0]
        bounds = _broadcast_bounds(bound_costs, m)
        if stats is None:
            refine = self.prepare(x, k, manhattan=manhattan)
        else:
            try:
                refine = self.prepare(x, k, manhattan=manhattan,
                                      stats=stats)
            except TypeError:
                # Third-party kernel predating the stats capability.
                refine = self.prepare(x, k, manhattan=manhattan)
        out = np.empty(m)
        for row in range(m):
            out[row] = refine(candidates[row], bounds[row])
        return out


def _broadcast_bounds(
    bound_costs: np.ndarray | float | None, m: int
) -> np.ndarray:
    if bound_costs is None:
        return np.full(m, _INF)
    bounds = np.asarray(bound_costs, dtype=np.float64)
    if bounds.ndim == 0:
        return np.full(m, float(bounds))
    if bounds.shape != (m,):
        raise ValueError(
            f"bound_costs must be a scalar or shape ({m},), got {bounds.shape}"
        )
    return bounds


class ScalarDTWKernel(DTWKernel):
    """Reference implementation: per-cell DP, row by row over the band.

    The per-cell arithmetic runs on Python floats (lists are faster to
    iterate than ndarrays), with row-granularity early abandoning: a
    warping path visits every row, so once every reachable cell of a
    row exceeds the cutoff no path can finish below it.
    """

    name = "scalar"

    def prepare(
        self, x: np.ndarray, k: int, *, manhattan: bool = False,
        stats: KernelStats | None = None,
    ) -> Callable[[np.ndarray, float], float]:
        x_list = x.tolist() if isinstance(x, np.ndarray) else list(x)

        def refine(y: np.ndarray, bound_cost: float = _INF) -> float:
            y_list = y.tolist() if isinstance(y, np.ndarray) else list(y)
            return _scalar_banded_cost(x_list, y_list, k, bound_cost,
                                       manhattan, stats)

        return refine

    def cost(
        self,
        x: np.ndarray,
        y: np.ndarray,
        k: int,
        bound_cost: float = _INF,
        *,
        manhattan: bool = False,
        stats: KernelStats | None = None,
    ) -> float:
        """Accumulated banded-DTW cost of one pair; ``inf`` if pruned."""
        return self.prepare(x, k, manhattan=manhattan, stats=stats)(
            y, bound_cost
        )


def _scalar_banded_cost(
    x_list: list[float],
    y_list: list[float],
    k: int,
    upper_bound_cost: float,
    manhattan: bool,
    stats: KernelStats | None = None,
) -> float:
    n = len(x_list)
    m = len(y_list)
    if stats is not None:
        stats.calls += 1
        stats.rows += 1
    if abs(n - m) > k:
        return _INF

    inf = _INF
    cells = 0
    prev = [inf] * m
    for i in range(n):
        lo = max(0, i - k)
        hi = min(m - 1, i + k)
        cells += hi - lo + 1
        curr = [inf] * m
        row_min = inf
        xi = x_list[i]
        for j in range(lo, hi + 1):
            d = xi - y_list[j]
            cost = (d if d >= 0 else -d) if manhattan else d * d
            if i == 0 and j == 0:
                best = 0.0
            else:
                best = inf
                if i > 0:
                    if prev[j] < best:
                        best = prev[j]
                    if j > 0 and prev[j - 1] < best:
                        best = prev[j - 1]
                if j > 0 and curr[j - 1] < best:
                    best = curr[j - 1]
                if best == inf:
                    continue
            total = best + cost
            curr[j] = total
            if total < row_min:
                row_min = total
        if row_min > upper_bound_cost:
            if stats is not None:
                stats.cells += cells
            return inf
        prev = curr
    if stats is not None:
        stats.cells += cells
    return prev[m - 1]


class VectorizedDTWKernel(DTWKernel):
    """Anti-diagonal wavefront sweep, single pair and batched.

    Cells on anti-diagonal ``d`` live at rows ``i`` with
    ``max(0, d-m+1, ceil((d-k)/2)) <= i <= min(n-1, d, floor((d+k)/2))``
    (the inner pair is the band ``|2i - d| <= k``); for ``k >= 1``
    every diagonal window is non-empty and both ends are non-decreasing
    in ``d``, which is what makes the rolling-buffer bookkeeping below
    sound.  ``k == 0`` degenerates to the pointwise (diagonal-path)
    distance and is handled in closed form.

    The recurrence for a cell ``(i, d-i)`` reads the two neighbours on
    diagonal ``d-1`` (buffer positions ``i`` and ``i+1`` with a one-slot
    left pad) and the diagonal neighbour on ``d-2`` (position ``i``);
    the min of three and the cost addition are performed in the same
    order as the scalar kernel, so results agree bit for bit.
    """

    name = "vectorized"

    def prepare(
        self, x: np.ndarray, k: int, *, manhattan: bool = False,
        stats: KernelStats | None = None,
    ) -> Callable[[np.ndarray, float], float]:
        def refine(y: np.ndarray, bound_cost: float = _INF) -> float:
            return self.cost(x, y, k, bound_cost, manhattan=manhattan,
                             stats=stats)

        return refine

    def cost(
        self,
        x: np.ndarray,
        y: np.ndarray,
        k: int,
        bound_cost: float = _INF,
        *,
        manhattan: bool = False,
        stats: KernelStats | None = None,
    ) -> float:
        n = x.size
        m = y.size
        if stats is not None:
            stats.calls += 1
            stats.rows += 1
        if abs(n - m) > k:
            return _INF
        if k == 0:
            if stats is not None:
                stats.cells += n
            diff = x - y
            total = (float(np.abs(diff).sum()) if manhattan
                     else float(np.dot(diff, diff)))
            return _INF if total > bound_cost else total

        inf = _INF
        cells = 0
        yr = y[::-1]
        # Rolling diagonals, indexed by row + 1: position 0 is a
        # permanent inf pad for the i == 0 edge.
        prev2 = np.full(n + 1, inf)
        prev1 = np.full(n + 1, inf)
        cur = np.full(n + 1, inf)
        prev_min = inf
        check = math.isfinite(bound_cost)
        for d in range(n + m - 1):
            lo = max(0, d - (m - 1), -((k - d) // 2))
            hi = min(n - 1, d, (d + k) // 2)
            cells += hi - lo + 1
            diff = x[lo:hi + 1] - yr[m - 1 - d + lo:m - d + hi]
            cost = np.abs(diff) if manhattan else diff * diff
            if d == 0:
                cur[1] = cost[0]
                cur_min = cur[1]
            else:
                seg = np.minimum(prev1[lo + 1:hi + 2], prev1[lo:hi + 1])
                np.minimum(seg, prev2[lo:hi + 1], out=seg)
                seg += cost
                cur[lo + 1:hi + 2] = seg
                cur_min = seg.min() if check else inf
            # The window only moves right; this one slot is the only
            # stale position later diagonals can read.
            cur[lo] = inf
            if check:
                if cur_min > bound_cost and prev_min > bound_cost:
                    if stats is not None:
                        stats.cells += cells
                    return inf
                prev_min = cur_min
            prev2, prev1, cur = prev1, cur, prev2
        if stats is not None:
            stats.cells += cells
        return float(prev1[n])

    def cost_batch(
        self,
        x: np.ndarray,
        candidates: np.ndarray,
        k: int,
        bound_costs: np.ndarray | float | None = None,
        *,
        manhattan: bool = False,
        stats: KernelStats | None = None,
    ) -> np.ndarray:
        total = candidates.shape[0]
        if total == 0:
            return np.zeros(0)
        if stats is not None:
            stats.rows += total
        bounds = None if bound_costs is None else _broadcast_bounds(
            bound_costs, total
        )
        n = x.size
        m = candidates.shape[1]
        if abs(n - m) > k:
            if stats is not None:
                stats.calls += 1
            return np.full(total, _INF)
        if k == 0:
            if stats is not None:
                stats.calls += 1
                stats.cells += total * n
            diff = candidates - x
            if manhattan:
                totals = np.abs(diff).sum(axis=1)
            else:
                totals = np.einsum("ij,ij->i", diff, diff)
            if bounds is not None:
                totals = np.where(totals > bounds, _INF, totals)
            return totals

        block = max(64, _BATCH_BLOCK_BYTES // ((n + 1) * 8))
        out = np.empty(total)
        for start in range(0, total, block):
            stop = min(start + block, total)
            if stats is not None:
                stats.calls += 1
            out[start:stop] = self._batch_block(
                x,
                candidates[start:stop],
                k,
                None if bounds is None else bounds[start:stop],
                manhattan,
                stats,
            )
        return out

    @staticmethod
    def _batch_block(
        x: np.ndarray,
        candidates: np.ndarray,
        k: int,
        bounds: np.ndarray | None,
        manhattan: bool,
        stats: KernelStats | None = None,
    ) -> np.ndarray:
        inf = _INF
        cells = 0
        n = x.size
        batch, m = candidates.shape
        # Row t of the flipped transpose is y[m-1-t] for every
        # candidate at once, so each diagonal's y values are one
        # contiguous row slice.
        flipped = np.ascontiguousarray(candidates.T[::-1])
        out = np.full(batch, inf)
        cols = np.arange(batch)
        prev2 = np.full((n + 1, batch), inf)
        prev1 = np.full((n + 1, batch), inf)
        cur = np.full((n + 1, batch), inf)
        check = bounds is not None
        if check:
            bounds = bounds.copy()
            prev_min = np.full(batch, inf)
        for d in range(n + m - 1):
            lo = max(0, d - (m - 1), -((k - d) // 2))
            hi = min(n - 1, d, (d + k) // 2)
            cells += (hi - lo + 1) * cols.size
            diff = x[lo:hi + 1, None] - flipped[m - 1 - d + lo:m - d + hi]
            cost = np.abs(diff) if manhattan else diff * diff
            if d == 0:
                cur[1] = cost[0]
                cur_min = cost[0].copy()
            else:
                seg = np.minimum(prev1[lo + 1:hi + 2], prev1[lo:hi + 1])
                np.minimum(seg, prev2[lo:hi + 1], out=seg)
                seg += cost
                cur[lo + 1:hi + 2] = seg
                cur_min = seg.min(axis=0) if check else None
            cur[lo] = inf
            if check:
                dead = (cur_min > bounds) & (prev_min > bounds)
                n_dead = int(np.count_nonzero(dead))
                if n_dead == cols.size:
                    if stats is not None:
                        stats.cells += cells
                    return out
                if (n_dead >= _COMPACT_MIN_DEAD
                        and n_dead >= _COMPACT_DEAD_FRACTION * cols.size):
                    keep = ~dead
                    flipped = np.ascontiguousarray(flipped[:, keep])
                    prev2 = np.ascontiguousarray(prev2[:, keep])
                    prev1 = np.ascontiguousarray(prev1[:, keep])
                    cur = np.ascontiguousarray(cur[:, keep])
                    bounds = bounds[keep]
                    cols = cols[keep]
                    cur_min = cur_min[keep]
                    if stats is not None:
                        stats.compacted_columns += n_dead
                prev_min = cur_min
            prev2, prev1, cur = prev1, cur, prev2
        out[cols] = prev1[n]
        if stats is not None:
            stats.cells += cells
        return out


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------

#: The backend used when callers pass ``backend=None``.
DEFAULT_BACKEND = "vectorized"

_REGISTRY: dict[str, DTWKernel] = {}


def register_kernel(kernel: DTWKernel, *, overwrite: bool = False) -> None:
    """Add a kernel to the registry under ``kernel.name``.

    Third-party backends (a C extension, a GPU kernel, ...) plug in
    here; every ``backend=`` parameter in the library then accepts the
    new name.
    """
    if not kernel.name or kernel.name == "abstract":
        raise ValueError("kernel must define a concrete name")
    if kernel.name in _REGISTRY and not overwrite:
        raise ValueError(f"backend {kernel.name!r} is already registered")
    _REGISTRY[kernel.name] = kernel


def get_kernel(backend: str | None = None) -> DTWKernel:
    """Look up a kernel by backend name (``None`` = the default)."""
    name = DEFAULT_BACKEND if backend is None else backend
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown DTW backend {name!r}; available: "
            f"{available_backends()}"
        ) from None


def available_backends() -> tuple[str, ...]:
    """Registered backend names, default first."""
    names = sorted(_REGISTRY, key=lambda name: (name != DEFAULT_BACKEND, name))
    return tuple(names)


register_kernel(ScalarDTWKernel())
register_kernel(VectorizedDTWKernel())


# ----------------------------------------------------------------------
# conveniences
# ----------------------------------------------------------------------

def banded_dtw_cost(
    x,
    y,
    k: int,
    bound_cost: float = _INF,
    *,
    manhattan: bool = False,
    backend: str | None = None,
    stats: KernelStats | None = None,
) -> float:
    """Accumulated banded-DTW cost via a named backend (cost space)."""
    xa = np.ascontiguousarray(x, dtype=np.float64)
    ya = np.ascontiguousarray(y, dtype=np.float64)
    return get_kernel(backend).cost(xa, ya, k, bound_cost,
                                    manhattan=manhattan, stats=stats)


def banded_dtw_cost_batch(
    x,
    candidates,
    k: int,
    bound_costs=None,
    *,
    manhattan: bool = False,
    backend: str | None = None,
    stats: KernelStats | None = None,
) -> np.ndarray:
    """Batched accumulated banded-DTW costs via a named backend."""
    xa = np.ascontiguousarray(x, dtype=np.float64)
    cand = np.ascontiguousarray(candidates, dtype=np.float64)
    return get_kernel(backend).cost_batch(xa, cand, k, bound_costs,
                                          manhattan=manhattan, stats=stats)
