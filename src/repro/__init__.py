"""repro — Warping Indexes with Envelope Transforms for Query by Humming.

A full reproduction of Zhu & Shasha (SIGMOD 2003): container-invariant
envelope transforms for exact DTW indexing (New_PAA and the generic
sign-split construction for DFT/DWT/SVD), the GEMINI warping index on a
from-scratch R*-tree, and a complete query-by-humming system — melody
corpus, MIDI IO, hum synthesis, pitch tracking, and the contour-string
baseline the paper compares against.

Quick start::

    from repro import QueryByHummingSystem, generate_corpus, segment_corpus
    melodies = segment_corpus(generate_corpus(50, seed=1))
    system = QueryByHummingSystem(melodies, delta=0.1)
    results, stats = system.query(hum_pitch_series, k=10)
"""

from .core import (
    DFTTransform,
    Envelope,
    HaarTransform,
    IdentityTransform,
    KeoghPAAEnvelopeTransform,
    NewPAAEnvelopeTransform,
    NormalForm,
    PAATransform,
    SignSplitEnvelopeTransform,
    SVDTransform,
    k_envelope,
    lb_envelope_transform,
    lb_keogh,
    lb_yi,
    normalize,
    tightness,
)
from .datasets import dataset_names, make_dataset, random_walks
from .dtw import dtw_distance, ldtw_distance, utw_distance, warping_distance
from .engine import CascadeStats, QueryEngine, StageStats
from .hum import SingerProfile, hum_melody, synthesize_melody, track_pitch
from .index import GridFile, LinearScan, QueryStats, RStarTree, WarpingIndex
from .music import (
    ContourIndex,
    Melody,
    MidiFile,
    Note,
    contour_string,
    generate_corpus,
    segment_corpus,
)
from .core.apca import APCA, apca_approximate, apca_dtw_lb, apca_euclidean_lb
from .core.sax import SAXWord, sax_mindist, sax_transform
from .hum.online import OnlinePitchTracker
from .index.subsequence import SubsequenceIndex, SubsequenceMatch
from .persistence import (
    load_corpus,
    load_index,
    melodies_from_midi_directory,
    save_corpus,
    save_index,
)
from .dtw.multivariate import mdtw_distance
from .qbh import (
    ProgressiveQuery,
    QueryByHummingSystem,
    QuerySession,
    RankTable,
    assess_humming,
    format_rank_tables,
)
from .tuning import TuningReport, tune_feature_count

__version__ = "1.0.0"

__all__ = [
    "DFTTransform",
    "Envelope",
    "HaarTransform",
    "IdentityTransform",
    "KeoghPAAEnvelopeTransform",
    "NewPAAEnvelopeTransform",
    "NormalForm",
    "PAATransform",
    "SignSplitEnvelopeTransform",
    "SVDTransform",
    "k_envelope",
    "lb_envelope_transform",
    "lb_keogh",
    "lb_yi",
    "normalize",
    "tightness",
    "dataset_names",
    "make_dataset",
    "random_walks",
    "dtw_distance",
    "ldtw_distance",
    "utw_distance",
    "warping_distance",
    "QueryEngine",
    "CascadeStats",
    "StageStats",
    "SingerProfile",
    "hum_melody",
    "synthesize_melody",
    "track_pitch",
    "GridFile",
    "LinearScan",
    "QueryStats",
    "RStarTree",
    "WarpingIndex",
    "ContourIndex",
    "Melody",
    "MidiFile",
    "Note",
    "contour_string",
    "generate_corpus",
    "segment_corpus",
    "QueryByHummingSystem",
    "RankTable",
    "format_rank_tables",
    "APCA",
    "apca_approximate",
    "apca_dtw_lb",
    "apca_euclidean_lb",
    "SubsequenceIndex",
    "SubsequenceMatch",
    "load_corpus",
    "load_index",
    "melodies_from_midi_directory",
    "save_corpus",
    "save_index",
    "SAXWord",
    "sax_mindist",
    "sax_transform",
    "OnlinePitchTracker",
    "QuerySession",
    "ProgressiveQuery",
    "assess_humming",
    "mdtw_distance",
    "TuningReport",
    "tune_feature_count",
    "__version__",
]
