"""Index auto-tuning: pick feature dimensionality empirically.

The paper fixes N = 8 features for its large experiments and N = 4 for
its tightness studies; a deployment should choose N from its own data.
:func:`tune_feature_count` grid-searches the feature dimensionality on
a sample of the database, measuring real filter power (candidates per
query at a target selectivity) against index size, and recommends the
smallest N within a tolerance of the best filter power — the paper's
own trade-off (more dimensions filter better but bloat every index
entry and MBR).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .core.envelope_transforms import NewPAAEnvelopeTransform
from .core.normal_form import NormalForm
from .index.gemini import WarpingIndex

__all__ = ["TuningPoint", "TuningReport", "tune_feature_count"]


@dataclass(frozen=True)
class TuningPoint:
    """Measured filter behaviour at one feature dimensionality."""

    n_features: int
    mean_candidates: float
    mean_pages: float
    index_floats: int  # storage cost: features kept per series


@dataclass
class TuningReport:
    """Outcome of a feature-count grid search."""

    points: list[TuningPoint]
    recommended: int

    def summary(self) -> str:
        lines = [f"{'N':>4} {'candidates':>12} {'pages':>8} {'floats':>8}"]
        for point in self.points:
            marker = "  <-- recommended" if point.n_features == self.recommended else ""
            lines.append(
                f"{point.n_features:>4} {point.mean_candidates:>12.1f} "
                f"{point.mean_pages:>8.1f} {point.index_floats:>8}{marker}"
            )
        return "\n".join(lines)


def tune_feature_count(
    database,
    queries,
    *,
    delta: float,
    normal_length: int = 128,
    candidates_grid: tuple[int, ...] = (4, 8, 16, 32),
    epsilon: float | None = None,
    tolerance: float = 1.25,
    sample_size: int | None = 2000,
    seed: int = 0,
) -> TuningReport:
    """Grid-search the feature dimensionality on real data.

    Parameters
    ----------
    database:
        The series to index (or a superset to sample from).
    queries:
        Representative query series.
    delta:
        Warping width the deployment will use.
    candidates_grid:
        Feature counts to try (each must be <= *normal_length*).
    epsilon:
        Range-query radius; default ``0.5 * sqrt(normal_length)``.
    tolerance:
        The smallest N whose mean candidate count is within this
        factor of the best N wins (prefer small indexes).
    sample_size:
        Random sample of the database used for measurement (None =
        all of it).

    Returns
    -------
    TuningReport
        Per-N measurements plus the recommendation.
    """
    database = list(database)
    if not database or not len(queries):
        raise ValueError("need a non-empty database and queries")
    if any(n > normal_length for n in candidates_grid):
        raise ValueError("feature counts cannot exceed the normal length")
    if tolerance < 1.0:
        raise ValueError("tolerance must be >= 1.0")
    rng = np.random.default_rng(seed)
    if sample_size is not None and len(database) > sample_size:
        picks = rng.choice(len(database), size=sample_size, replace=False)
        database = [database[i] for i in picks]
    radius = epsilon if epsilon is not None else 0.5 * np.sqrt(normal_length)

    points = []
    for n_features in sorted(set(candidates_grid)):
        index = WarpingIndex(
            database,
            delta=delta,
            env_transform=NewPAAEnvelopeTransform(normal_length, n_features),
            normal_form=NormalForm(length=normal_length),
        )
        cand = pages = 0
        for query in queries:
            _, stats = index.filter_query(query, radius)
            cand += stats.candidates
            pages += stats.page_accesses
        points.append(
            TuningPoint(
                n_features=n_features,
                mean_candidates=cand / len(queries),
                mean_pages=pages / len(queries),
                index_floats=n_features,
            )
        )

    best = min(point.mean_candidates for point in points)
    recommended = points[-1].n_features
    for point in points:  # grid is sorted ascending: first hit is smallest
        if point.mean_candidates <= best * tolerance + 1e-9:
            recommended = point.n_features
            break
    return TuningReport(points=points, recommended=recommended)
