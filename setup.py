"""Setup shim for environments without the ``wheel`` package.

``pip install -e . --no-use-pep517`` (or plain ``pip install -e .`` on
modern toolchains) installs the package; all metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
